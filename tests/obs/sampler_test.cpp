// Deterministic SLO-aware trace sampling (obs/sampler.hpp + the Tracer's
// lifecycle gate): violators always retained, compliant lifecycles kept
// 1-in-N on a pure request-id hash, exact drop accounting via the
// "sampled_out:<model>:<node>" counter registry.
#include "src/obs/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/models/zoo.hpp"
#include "src/obs/tracer.hpp"

namespace paldia::obs {
namespace {

TEST(TraceSampler, PassThroughAtRateOne) {
  const TraceSampler sampler(1);
  EXPECT_TRUE(sampler.pass_through());
  for (std::int64_t id = 0; id < 100; ++id) {
    EXPECT_TRUE(sampler.keep(id, /*violated=*/false));
  }
}

TEST(TraceSampler, ViolatorsAlwaysKept) {
  const TraceSampler sampler(1024);  // aggressive rate: compliant rarely kept
  for (std::int64_t id = 0; id < 1000; ++id) {
    EXPECT_TRUE(sampler.keep(id, /*violated=*/true));
  }
}

TEST(TraceSampler, DecisionIsPureFunctionOfId) {
  // Same id, same seed -> same answer, in any order, any number of times.
  const TraceSampler a(8);
  const TraceSampler b(8);
  std::vector<bool> forward;
  for (std::int64_t id = 0; id < 4096; ++id) {
    forward.push_back(a.keep_compliant(id));
  }
  for (std::int64_t id = 4095; id >= 0; --id) {
    EXPECT_EQ(forward[static_cast<std::size_t>(id)], b.keep_compliant(id)) << id;
  }
}

TEST(TraceSampler, SeedChangesTheKeptSet) {
  const TraceSampler a(8);
  const TraceSampler b(8, /*seed=*/0x1234);
  int differing = 0;
  for (std::int64_t id = 0; id < 4096; ++id) {
    differing += a.keep_compliant(id) != b.keep_compliant(id) ? 1 : 0;
  }
  EXPECT_GT(differing, 0);
}

TEST(TraceSampler, CompliantKeepRateApproximatesOneInN) {
  // Binomial bound: for n = 65536 draws at p = 1/rate, the observed rate
  // must land within 5 sigma of p (spurious-failure odds ~ 1e-6).
  for (const std::uint32_t rate : {2u, 8u, 64u}) {
    const TraceSampler sampler(rate);
    const int n = 65536;
    int kept = 0;
    for (std::int64_t id = 0; id < n; ++id) {
      kept += sampler.keep_compliant(id) ? 1 : 0;
    }
    const double p = 1.0 / rate;
    const double sigma = std::sqrt(p * (1.0 - p) * n);
    EXPECT_NEAR(kept, n * p, 5.0 * sigma) << "rate " << rate;
  }
}

// --- Tracer integration ------------------------------------------------------

constexpr auto kModel = models::ModelId::kResNet50;
constexpr auto kNode = hw::NodeType::kG3s_xlarge;

Tracer make_sampling_tracer(std::uint32_t rate) {
  TracerConfig config;
  config.sample_rate = rate;
  return Tracer(config);
}

void record_one(Tracer& tracer, std::int64_t id, DurationMs latency_ms) {
  tracer.record_request_lifecycle(id, kModel, kNode, cluster::ShareMode::kSpatial,
                                  /*batch_size=*/1, /*spatial=*/50, /*temporal=*/1,
                                  /*arrival_ms=*/1000.0, 1001.0, 1002.0,
                                  1000.0 + latency_ms, latency_ms - 2.0, 0.0, 0.0);
}

TEST(TracerSampling, DropsAreTalliedExactly) {
  Tracer tracer = make_sampling_tracer(8);
  std::array<DurationMs, models::kModelCount> slos{};
  slos.fill(100.0);
  tracer.set_model_slos(slos);

  const int n = 1000;
  for (std::int64_t id = 0; id < n; ++id) {
    record_one(tracer, id, /*latency_ms=*/50.0);  // all compliant
  }
  const auto kept = tracer.events().size() / 4;
  EXPECT_EQ(kept + tracer.sampled_out_total(), static_cast<std::size_t>(n));
  EXPECT_GT(tracer.sampled_out_total(), 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);  // sampling is not truncation

  tracer.sample_counters(2000.0);
  const std::string key = std::string("sampled_out:") +
                          std::string(models::model_id_name(kModel)) + ":" +
                          std::string(hw::node_type_name(kNode));
  EXPECT_EQ(tracer.counter_value(key),
            static_cast<double>(tracer.sampled_out_total()));
}

TEST(TracerSampling, ViolatorsBypassSampling) {
  Tracer tracer = make_sampling_tracer(1'000'000);  // drop ~everything compliant
  std::array<DurationMs, models::kModelCount> slos{};
  slos.fill(100.0);
  tracer.set_model_slos(slos);

  for (std::int64_t id = 0; id < 500; ++id) {
    record_one(tracer, id, /*latency_ms=*/250.0);  // all violating
  }
  EXPECT_EQ(tracer.events().size(), 500u * 4u);
  EXPECT_EQ(tracer.sampled_out_total(), 0u);
}

TEST(TracerSampling, DefaultSlosTreatNothingAsViolating) {
  // Until set_model_slos installs real deadlines every request counts as
  // compliant (kTimeNever), so plain 1-in-N sampling applies.
  Tracer tracer = make_sampling_tracer(1'000'000);
  for (std::int64_t id = 0; id < 500; ++id) {
    record_one(tracer, id, /*latency_ms=*/250.0);
  }
  EXPECT_LT(tracer.events().size() / 4, 5u);
}

TEST(TracerSampling, BatchPathMatchesPerRequestPath) {
  // The bulk record_batch_lifecycles gate must keep exactly the ids the
  // per-request path keeps, compacted without gaps.
  std::array<DurationMs, models::kModelCount> slos{};
  slos.fill(100.0);

  Tracer per_request = make_sampling_tracer(4);
  per_request.set_model_slos(slos);
  Tracer bulk = make_sampling_tracer(4);
  bulk.set_model_slos(slos);

  const int count = 64;
  std::vector<cluster::Request> requests(count);
  for (int i = 0; i < count; ++i) {
    requests[i].id = RequestId{i + 1};
    requests[i].model = kModel;
    requests[i].arrival_ms = 1000.0;
  }
  for (const auto& request : requests) {
    per_request.record_request_lifecycle(
        request.id.value, kModel, kNode, cluster::ShareMode::kSpatial, count, 50,
        1, request.arrival_ms, 1001.0, 1002.0, 1050.0, 48.0, 0.0, 0.0);
  }
  bulk.record_batch_lifecycles(requests.data(), count, kModel, kNode,
                               cluster::ShareMode::kSpatial, count, 50, 1,
                               1001.0, 1002.0, 1050.0, 48.0, 0.0, 0.0);

  ASSERT_EQ(per_request.events().size(), bulk.events().size());
  for (std::size_t i = 0; i < per_request.events().size(); ++i) {
    EXPECT_EQ(per_request.events()[i].id, bulk.events()[i].id) << i;
    EXPECT_EQ(per_request.events()[i].type, bulk.events()[i].type) << i;
  }
  EXPECT_EQ(per_request.sampled_out_total(), bulk.sampled_out_total());
}

TEST(TracerCounters, SampleCountersEmitsSortedKeyOrder) {
  // Regression: the counter registry must iterate in sorted-key order (it
  // is a std::map) so counter samples land in the trace in a deterministic
  // sequence regardless of registration order.
  Tracer tracer;
  tracer.count("zebra_counter");
  tracer.count("alpha_counter");
  tracer.count("unserved:ResNet 50", 3.0);
  tracer.count("mid_counter");
  tracer.sample_counters(10.0);

  std::vector<std::string> names;
  for (const TraceEvent& event : tracer.events()) {
    if (event.type == TraceEvent::Type::kCounter &&
        event.counter_name != nullptr) {
      names.emplace_back(event.counter_name);
    }
  }
  const std::vector<std::string> expected = {
      "alpha_counter", "mid_counter", "unserved:ResNet 50", "zebra_counter"};
  EXPECT_EQ(names, expected);
}

TEST(TracerCounters, SampledOutCountersAreCumulativeAcrossSamples) {
  // flush_sampled_out_counters assigns (not adds) the running totals, so
  // sampling the registry twice must not double the exported counts.
  Tracer tracer = make_sampling_tracer(1'000'000);
  for (std::int64_t id = 0; id < 200; ++id) {
    record_one(tracer, id, /*latency_ms=*/50.0);
  }
  const std::string key = std::string("sampled_out:") +
                          std::string(models::model_id_name(kModel)) + ":" +
                          std::string(hw::node_type_name(kNode));
  tracer.sample_counters(1.0);
  const double first = tracer.counter_value(key);
  tracer.sample_counters(2.0);
  EXPECT_EQ(tracer.counter_value(key), first);
  EXPECT_EQ(first, static_cast<double>(tracer.sampled_out_total()));
}

}  // namespace
}  // namespace paldia::obs
