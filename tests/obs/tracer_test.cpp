// Unit tests for the per-repetition Tracer: span balance and nesting, the
// all-or-nothing lifecycle reservation against the ring cap, the counter
// registry's deterministic sampling order, and the decision-log cap.
#include "src/obs/tracer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace paldia::obs {
namespace {

void record_one_lifecycle(Tracer& tracer, std::int64_t id, TimeMs arrival) {
  tracer.record_request_lifecycle(
      id, models::ModelId::kResNet50, hw::NodeType::kG3s_xlarge,
      cluster::ShareMode::kSpatial, /*batch_size=*/4, /*spatial=*/3,
      /*temporal=*/1, arrival, arrival + 2.0, arrival + 5.0, arrival + 95.0,
      /*solo_ms=*/85.0, /*interference_ms=*/5.0, /*cold_ms=*/3.0);
}

TEST(TracerTest, LifecycleEmitsParentPlusThreePhasesSummingToE2e) {
  Tracer tracer;
  record_one_lifecycle(tracer, 7, 100.0);
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);

  const TraceEvent& parent = events[0];
  EXPECT_EQ(parent.type, TraceEvent::Type::kRequest);
  EXPECT_EQ(parent.id, 7);
  EXPECT_EQ(parent.model, static_cast<std::int16_t>(models::ModelId::kResNet50));
  EXPECT_EQ(parent.node, static_cast<std::int16_t>(hw::NodeType::kG3s_xlarge));
  EXPECT_EQ(parent.batch_size, 4);
  EXPECT_EQ(parent.spatial, 3);
  EXPECT_EQ(parent.temporal, 1);
  EXPECT_DOUBLE_EQ(parent.start_ms, 100.0);
  EXPECT_DOUBLE_EQ(parent.end_ms, 195.0);

  double phase_sum = 0.0;
  TimeMs cursor = parent.start_ms;
  for (std::size_t i = 1; i < 4; ++i) {
    const TraceEvent& phase = events[i];
    EXPECT_EQ(phase.type, TraceEvent::Type::kPhase);
    EXPECT_EQ(phase.id, 7);
    // Phases are contiguous: each starts where the previous ended.
    EXPECT_DOUBLE_EQ(phase.start_ms, cursor);
    cursor = phase.end_ms;
    phase_sum += phase.end_ms - phase.start_ms;
  }
  EXPECT_DOUBLE_EQ(cursor, parent.end_ms);
  EXPECT_DOUBLE_EQ(phase_sum, parent.end_ms - parent.start_ms);
  EXPECT_STREQ(events[1].name, "queue");
  EXPECT_STREQ(events[2].name, "dispatch");
  EXPECT_STREQ(events[3].name, "execute");
  EXPECT_DOUBLE_EQ(events[2].cold_ms, 3.0);
  EXPECT_DOUBLE_EQ(events[3].solo_ms, 85.0);
  EXPECT_DOUBLE_EQ(events[3].interference_ms, 5.0);
}

TEST(TracerTest, RingOverflowDropsWholeLifecycles) {
  TracerConfig config;
  config.event_capacity = 10;  // room for 2 lifecycles (4 events each) + 2
  Tracer tracer(config);
  for (int i = 0; i < 5; ++i) {
    record_one_lifecycle(tracer, i, 100.0 * i);
  }
  // 2 lifecycles fit; the 3rd would need 4 slots but only 2 remain, so it
  // (and every later one) is dropped whole — never a partial lifecycle.
  EXPECT_EQ(tracer.events().size(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12u);
  EXPECT_EQ(tracer.events().back().type, TraceEvent::Type::kPhase);
  // The two slots left over stay usable for single-event records.
  tracer.instant("switch_begin", 1000.0, 1.0);
  tracer.instant("switch_active", 1001.0, 1.0);
  EXPECT_EQ(tracer.events().size(), 10u);
  tracer.instant("one_too_many", 1002.0, 1.0);
  EXPECT_EQ(tracer.events().size(), 10u);
  EXPECT_EQ(tracer.dropped_events(), 13u);
}

TEST(TracerTest, SpansNestLifoAndFlagMismatches) {
  Tracer tracer;
  tracer.begin_span("outer", 10.0);
  tracer.begin_span("inner", 11.0);
  EXPECT_EQ(tracer.open_spans(), 2);
  tracer.end_span("inner", 12.0);
  tracer.end_span("outer", 13.0);
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.unbalanced_spans(), 0u);
  ASSERT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.events()[0].type, TraceEvent::Type::kSpanBegin);
  EXPECT_EQ(tracer.events()[3].type, TraceEvent::Type::kSpanEnd);

  // A mismatched end is counted, not applied.
  tracer.begin_span("outer", 20.0);
  tracer.end_span("not_outer", 21.0);
  EXPECT_EQ(tracer.unbalanced_spans(), 1u);
  EXPECT_EQ(tracer.open_spans(), 1);
  tracer.end_span("outer", 22.0);
  EXPECT_EQ(tracer.open_spans(), 0);

  // An end with nothing open is also unbalanced.
  tracer.end_span("ghost", 30.0);
  EXPECT_EQ(tracer.unbalanced_spans(), 2u);
}

TEST(TracerTest, CountersAccumulateAndSampleInNameOrder) {
  Tracer tracer;
  tracer.count("requeues");
  tracer.count("arrivals", 5.0);
  tracer.count("arrivals", 2.0);
  EXPECT_DOUBLE_EQ(tracer.counter_value("arrivals"), 7.0);
  EXPECT_DOUBLE_EQ(tracer.counter_value("requeues"), 1.0);
  EXPECT_DOUBLE_EQ(tracer.counter_value("never_touched"), 0.0);

  tracer.sample_counters(500.0);
  ASSERT_EQ(tracer.events().size(), 2u);
  // std::map keeps samples in lexicographic name order — deterministic
  // regardless of first-touch order.
  EXPECT_STREQ(tracer.events()[0].counter_name, "arrivals");
  EXPECT_STREQ(tracer.events()[1].counter_name, "requeues");
  EXPECT_DOUBLE_EQ(tracer.events()[0].value, 7.0);
  EXPECT_DOUBLE_EQ(tracer.events()[0].start_ms, 500.0);
}

TEST(TracerTest, GaugeCarriesModelTag) {
  Tracer tracer;
  tracer.gauge("queue_depth", 100.0, 12.0, /*model_tag=*/3);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].type, TraceEvent::Type::kCounter);
  EXPECT_EQ(tracer.events()[0].model, 3);
  EXPECT_DOUBLE_EQ(tracer.events()[0].value, 12.0);
}

TEST(TracerTest, DecisionLogCapCountsDrops) {
  TracerConfig config;
  config.decision_capacity = 2;
  Tracer tracer(config);

  DecisionRecord* first = tracer.begin_decision(100.0, hw::NodeType::kC6i_2xlarge);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(tracer.current_decision(), first);
  first->raw_choice = hw::NodeType::kG3s_xlarge;
  tracer.end_decision(hw::NodeType::kG3s_xlarge, /*switch_begun=*/true);

  DecisionRecord* second = tracer.begin_decision(200.0, hw::NodeType::kG3s_xlarge);
  ASSERT_NE(second, nullptr);
  tracer.end_decision(hw::NodeType::kG3s_xlarge, false);

  // Cap reached: the third tick is dropped and current_decision is null, so
  // policies skip enrichment; end_decision must be a safe no-op.
  EXPECT_EQ(tracer.begin_decision(300.0, hw::NodeType::kG3s_xlarge), nullptr);
  EXPECT_EQ(tracer.current_decision(), nullptr);
  tracer.end_decision(hw::NodeType::kP3_2xlarge, false);

  ASSERT_EQ(tracer.decisions().size(), 2u);
  EXPECT_EQ(tracer.dropped_decisions(), 1u);
  EXPECT_EQ(tracer.decisions()[0].final_choice, hw::NodeType::kG3s_xlarge);
  EXPECT_TRUE(tracer.decisions()[0].switch_begun);
  EXPECT_FALSE(tracer.decisions()[1].switch_begun);
}

TEST(TracerTest, EndDecisionWithoutBeginIsNoOp) {
  Tracer tracer;
  tracer.end_decision(hw::NodeType::kC6i_2xlarge, false);
  EXPECT_TRUE(tracer.decisions().empty());
}

TEST(TracerTest, BatchLifecyclesMatchPerRequestLoop) {
  // The bulk batch-completion path must emit byte-identical events to
  // calling record_request_lifecycle once per member request.
  std::vector<cluster::Request> requests;
  for (int i = 0; i < 5; ++i) {
    cluster::Request request;
    request.id = RequestId{100 + i};
    request.model = models::ModelId::kResNet50;
    request.arrival_ms = 10.0 * i;
    requests.push_back(request);
  }
  Tracer bulk;
  bulk.record_batch_lifecycles(requests.data(), 5, models::ModelId::kResNet50,
                               hw::NodeType::kG3s_xlarge,
                               cluster::ShareMode::kTemporal, /*batch_size=*/5,
                               /*spatial=*/0, /*temporal=*/5, /*submit_ms=*/60.0,
                               /*start_ms=*/65.0, /*end_ms=*/160.0,
                               /*solo_ms=*/85.0, /*interference_ms=*/10.0,
                               /*cold_ms=*/3.0);
  Tracer loop;
  for (const auto& request : requests) {
    loop.record_request_lifecycle(request.id.value, models::ModelId::kResNet50,
                                  hw::NodeType::kG3s_xlarge,
                                  cluster::ShareMode::kTemporal, 5, 0, 5,
                                  request.arrival_ms, 60.0, 65.0, 160.0, 85.0,
                                  10.0, 3.0);
  }
  ASSERT_EQ(bulk.events().size(), 20u);
  ASSERT_EQ(loop.events().size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    const TraceEvent& a = bulk.events()[i];
    const TraceEvent& b = loop.events()[i];
    EXPECT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.id, b.id) << i;
    EXPECT_EQ(a.mode, b.mode) << i;
    EXPECT_EQ(a.model, b.model) << i;
    EXPECT_EQ(a.node, b.node) << i;
    EXPECT_EQ(a.batch_size, b.batch_size) << i;
    EXPECT_EQ(a.spatial, b.spatial) << i;
    EXPECT_EQ(a.temporal, b.temporal) << i;
    EXPECT_STREQ(a.name, b.name) << i;
    EXPECT_DOUBLE_EQ(a.start_ms, b.start_ms) << i;
    EXPECT_DOUBLE_EQ(a.end_ms, b.end_ms) << i;
    EXPECT_DOUBLE_EQ(a.solo_ms, b.solo_ms) << i;
    EXPECT_DOUBLE_EQ(a.interference_ms, b.interference_ms) << i;
    EXPECT_DOUBLE_EQ(a.cold_ms, b.cold_ms) << i;
  }
  EXPECT_EQ(bulk.dropped_events(), loop.dropped_events());
}

TEST(TracerTest, AppendBatchKeepsGroupsAtomicAtCapacity) {
  TracerConfig config;
  config.event_capacity = 10;
  Tracer tracer(config);
  std::vector<TraceEvent> events(12);  // 3 groups of 4
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].id = static_cast<std::int64_t>(i);
  }
  // Only 2 whole groups (8 events) fit atomically in 10 slots.
  EXPECT_EQ(tracer.append_batch(events, 4), 8u);
  EXPECT_EQ(tracer.events().size(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 4u);
  EXPECT_EQ(tracer.events().back().id, 7);
  // The 2 leftover slots still take ungrouped events one by one.
  std::vector<TraceEvent> singles(3);
  EXPECT_EQ(tracer.append_batch(singles, 1), 2u);
  EXPECT_EQ(tracer.events().size(), 10u);
  EXPECT_EQ(tracer.dropped_events(), 5u);
  // Full buffer: everything is dropped, nothing stored.
  EXPECT_EQ(tracer.append_batch(events, 4), 0u);
  EXPECT_EQ(tracer.dropped_events(), 17u);
}

TEST(TracerTest, AppendBatchEmptyIsNoop) {
  Tracer tracer;
  EXPECT_EQ(tracer.append_batch({}, 4), 0u);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped_events(), 0u);
}

TEST(TracerTest, BulkDropCountMatchesPerRequestAtOverflow) {
  // At the ring cap, the bulk path must retain the identical event prefix
  // and count the identical number of drops as the sequential path did.
  std::vector<cluster::Request> requests;
  for (int i = 0; i < 4; ++i) {
    cluster::Request request;
    request.id = RequestId{i};
    request.model = models::ModelId::kResNet50;
    request.arrival_ms = 1.0 * i;
    requests.push_back(request);
  }
  TracerConfig config;
  config.event_capacity = 10;  // room for 2 whole lifecycles + 2 slots
  Tracer bulk(config);
  bulk.record_batch_lifecycles(requests.data(), 4, models::ModelId::kResNet50,
                               hw::NodeType::kG3s_xlarge,
                               cluster::ShareMode::kSpatial, 4, 4, 0, 5.0, 6.0,
                               20.0, 12.0, 2.0, 0.0);
  Tracer loop(config);
  for (const auto& request : requests) {
    loop.record_request_lifecycle(request.id.value, models::ModelId::kResNet50,
                                  hw::NodeType::kG3s_xlarge,
                                  cluster::ShareMode::kSpatial, 4, 4, 0,
                                  request.arrival_ms, 5.0, 6.0, 20.0, 12.0, 2.0,
                                  0.0);
  }
  EXPECT_EQ(bulk.events().size(), loop.events().size());
  EXPECT_EQ(bulk.dropped_events(), loop.dropped_events());
  ASSERT_EQ(bulk.events().size(), 8u);
  EXPECT_EQ(bulk.events()[4].id, loop.events()[4].id);
}

TEST(TracerTest, RunTraceAggregatesDrops) {
  RunTrace trace;
  trace.config.event_capacity = 4;
  trace.reps.push_back(std::make_unique<Tracer>(trace.config));
  trace.reps.push_back(std::make_unique<Tracer>(trace.config));
  record_one_lifecycle(*trace.reps[0], 1, 0.0);
  record_one_lifecycle(*trace.reps[0], 2, 100.0);  // dropped: buffer full
  record_one_lifecycle(*trace.reps[1], 3, 0.0);
  EXPECT_EQ(trace.dropped_events(), 4u);
  EXPECT_EQ(trace.reps[0]->events().size(), 4u);
  EXPECT_EQ(trace.reps[1]->events().size(), 4u);
}

}  // namespace
}  // namespace paldia::obs
