// Unit tests for SLO-violation attribution: the classification cascade,
// blackout-window bookkeeping, the engine's cause-sum invariant, and the
// streaming quantile sketch behind the per-bucket latency distributions.
#include "src/obs/attribution.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "src/models/zoo.hpp"
#include "src/obs/sketch.hpp"

namespace paldia::obs {
namespace {

using telemetry::ViolationCause;

/// A violating request (latency 300 ms vs any 200 ms SLO) with every
/// component small; tests bump one component to make it dominate.
LifecycleSample base_sample() {
  LifecycleSample sample;
  sample.request_id = 1;
  sample.model = 0;
  sample.node = 0;
  sample.arrival_ms = 1000.0;
  sample.submit_ms = 1010.0;   // 10 ms gateway
  sample.start_ms = 1025.0;    // 15 ms dispatch
  sample.end_ms = 1300.0;      // 275 ms execute
  sample.solo_ms = 260.0;
  sample.interference_ms = 10.0;
  sample.cold_ms = 5.0;
  return sample;
}

TEST(ClassifyViolation, RetryWinsOutright) {
  auto sample = base_sample();
  sample.retried = true;
  sample.blackout = true;  // even over a blackout overlap
  sample.cold_ms = 250.0;
  EXPECT_EQ(classify_violation(sample), ViolationCause::kFailureRetry);
}

TEST(ClassifyViolation, BlackoutWinsWhenWaitingDominates) {
  auto sample = base_sample();
  sample.blackout = true;
  sample.submit_ms = 1200.0;  // 200 ms gateway wait through the blackout
  sample.start_ms = 1210.0;
  EXPECT_EQ(classify_violation(sample), ViolationCause::kHardwareSwitch);
}

TEST(ClassifyViolation, BlackoutLosesToExecutionSideInflation) {
  auto sample = base_sample();
  sample.blackout = true;
  // gateway (10) + lane (0) < cold + interference: the slowdown was
  // execution-side, the blackout merely coincided.
  sample.cold_ms = 100.0;
  sample.interference_ms = 120.0;
  sample.solo_ms = 50.0;
  EXPECT_EQ(classify_violation(sample), ViolationCause::kMpsInterference);
}

TEST(ClassifyViolation, DominantComponentDecides) {
  {
    auto sample = base_sample();
    sample.cold_ms = 270.0;
    EXPECT_EQ(classify_violation(sample), ViolationCause::kColdStart);
  }
  {
    auto sample = base_sample();
    sample.interference_ms = 270.0;
    EXPECT_EQ(classify_violation(sample), ViolationCause::kMpsInterference);
  }
  {
    auto sample = base_sample();
    sample.submit_ms = 1280.0;  // gateway 280 ms
    sample.start_ms = 1285.0;
    EXPECT_EQ(classify_violation(sample), ViolationCause::kGatewayQueue);
  }
  {
    auto sample = base_sample();
    sample.start_ms = 1290.0;  // lane wait 280 ms after a 10 ms gateway
    EXPECT_EQ(classify_violation(sample), ViolationCause::kBatching);
  }
  {
    // Nothing bumped: solo execution (260 ms) is the largest share.
    EXPECT_EQ(classify_violation(base_sample()), ViolationCause::kExecution);
  }
}

TEST(BlackoutWindows, OpenCloseAndOverlap) {
  BlackoutWindows windows;
  EXPECT_FALSE(windows.overlaps(0.0, 1e12));

  windows.open(100.0);
  // Open window extends to +infinity.
  EXPECT_TRUE(windows.overlaps(500.0, 600.0));
  EXPECT_FALSE(windows.overlaps(0.0, 99.0));

  windows.close_all(200.0);
  EXPECT_TRUE(windows.overlaps(150.0, 160.0));
  EXPECT_TRUE(windows.overlaps(199.0, 300.0));  // straddles the close
  EXPECT_FALSE(windows.overlaps(201.0, 300.0));
  // Endpoint touching counts as overlap.
  EXPECT_TRUE(windows.overlaps(200.0, 300.0));
  EXPECT_TRUE(windows.overlaps(0.0, 100.0));
}

TEST(BlackoutWindows, CloseAllClosesEveryOpenWindow) {
  BlackoutWindows windows;
  windows.open(100.0);  // switch_begin
  windows.open(150.0);  // node_failure mid-switch
  windows.close_all(200.0);
  EXPECT_EQ(windows.count(), 2u);
  EXPECT_FALSE(windows.overlaps(201.0, 1e12));

  // A later window is independent of the closed ones.
  windows.open(500.0);
  EXPECT_TRUE(windows.overlaps(600.0, 601.0));
  EXPECT_FALSE(windows.overlaps(300.0, 400.0));
}

TEST(AttributionEngine, CauseCountsSumToViolationTotal) {
  AttributionEngine engine(models::Zoo::instance());
  engine.on_switch_begin(5000.0);
  engine.on_switch_active(5500.0);
  engine.on_requeued(42);

  std::int64_t id = 100;  // clear of the retried id 42
  for (int i = 0; i < 50; ++i) {
    auto sample = base_sample();
    sample.request_id = id++;
    sample.model = i % 3;
    sample.node = i % 2;
    if (i % 4 == 0) sample.end_ms = sample.arrival_ms + 150.0;  // compliant
    if (i % 5 == 0) sample.cold_ms = 270.0;
    if (i % 7 == 0) sample.interference_ms = 280.0;
    engine.observe_request(sample);
  }
  // The retried request and one that waited through the blackout.
  auto retried = base_sample();
  retried.request_id = 42;
  engine.observe_request(retried);
  auto blackout = base_sample();
  blackout.request_id = id++;
  blackout.arrival_ms = 5100.0;
  blackout.submit_ms = 5400.0;
  blackout.start_ms = 5410.0;
  blackout.end_ms = 5450.0;
  blackout.solo_ms = 30.0;
  blackout.interference_ms = 5.0;
  blackout.cold_ms = 0.0;
  engine.observe_request(blackout);

  engine.record_unserved(/*model=*/1, /*count=*/3);

  std::uint64_t cause_sum = 0;
  for (const std::uint64_t n : engine.causes()) cause_sum += n;
  EXPECT_EQ(cause_sum, engine.violations());
  EXPECT_GT(engine.violations(), 0u);
  EXPECT_EQ(engine.causes()[static_cast<int>(ViolationCause::kFailureRetry)], 1u);
  EXPECT_EQ(engine.causes()[static_cast<int>(ViolationCause::kHardwareSwitch)], 1u);
  EXPECT_EQ(engine.causes()[static_cast<int>(ViolationCause::kUnserved)], 3u);

  // Per-model and per-node buckets partition the totals.
  std::uint64_t model_completed = 0;
  std::uint64_t model_violations = 0;
  for (int m = 0; m < models::kModelCount; ++m) {
    model_completed += engine.per_model(m).completed;
    model_violations += engine.per_model(m).violations;
  }
  EXPECT_EQ(model_completed, engine.completed());
  EXPECT_EQ(model_violations, engine.violations());
}

TEST(AttributionEngine, CompliantRequestsAreNotClassified) {
  AttributionEngine engine(models::Zoo::instance());
  auto sample = base_sample();
  sample.end_ms = sample.arrival_ms + 100.0;
  EXPECT_FALSE(engine.observe_request(sample).has_value());
  EXPECT_EQ(engine.completed(), 1u);
  EXPECT_EQ(engine.violations(), 0u);
}

TEST(QuantileSketch, SummaryMatchesDistribution) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  for (int i = 1; i <= 1000; ++i) sketch.insert(static_cast<double>(i) * 0.1);
  const SketchSummary summary = sketch.summary();
  EXPECT_EQ(summary.count, 1000u);
  EXPECT_NEAR(summary.mean_ms, 50.05, 0.5);
  EXPECT_NEAR(summary.p50_ms, 50.0, 1.0);
  EXPECT_NEAR(summary.p95_ms, 95.0, 1.0);
  EXPECT_NEAR(summary.p99_ms, 99.0, 1.0);
  EXPECT_NEAR(summary.max_ms, 100.0, 0.5);
  EXPECT_NEAR(sketch.fraction_at_or_below(50.0), 0.5, 0.01);
}

TEST(QuantileSketch, MergeIsOrderIndependent) {
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch ba;
  for (int i = 0; i < 500; ++i) {
    a.insert(10.0 + i * 0.3);
    b.insert(400.0 + i * 0.9);
  }
  ba.merge(b);
  ba.merge(a);
  QuantileSketch ab;
  ab.merge(a);
  ab.merge(b);
  const auto sab = ab.summary();
  const auto sba = ba.summary();
  EXPECT_EQ(sab.count, sba.count);
  EXPECT_DOUBLE_EQ(sab.p50_ms, sba.p50_ms);
  EXPECT_DOUBLE_EQ(sab.p99_ms, sba.p99_ms);
  EXPECT_DOUBLE_EQ(sab.mean_ms, sba.mean_ms);
}

}  // namespace
}  // namespace paldia::obs
