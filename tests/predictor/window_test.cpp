#include "src/predictor/window.hpp"

#include <gtest/gtest.h>

namespace paldia::predictor {
namespace {

TEST(ArrivalWindow, EmptyRateIsZero) {
  ArrivalWindow window(1000.0);
  EXPECT_EQ(window.rate(0.0), 0.0);
  EXPECT_EQ(window.count_in_window(5000.0), 0);
}

TEST(ArrivalWindow, CountsWithinWindow) {
  ArrivalWindow window(1000.0);
  window.record(100.0);
  window.record(200.0, 3);
  EXPECT_EQ(window.count_in_window(500.0), 4);
  EXPECT_NEAR(window.rate(500.0), 4.0, 1e-9);  // 4 per 1 s window
}

TEST(ArrivalWindow, EvictsOldEvents) {
  ArrivalWindow window(1000.0);
  window.record(0.0, 10);
  window.record(900.0, 5);
  EXPECT_EQ(window.count_in_window(900.0), 15);
  EXPECT_EQ(window.count_in_window(1500.0), 5);   // the t=0 batch expired
  EXPECT_EQ(window.count_in_window(2500.0), 0);
}

TEST(ArrivalWindow, CoalescesSameTimestamp) {
  ArrivalWindow window(1000.0);
  for (int i = 0; i < 100; ++i) window.record(50.0);
  EXPECT_EQ(window.count_in_window(100.0), 100);
}

TEST(ArrivalWindow, SteadyRateMeasured) {
  ArrivalWindow window(1000.0);
  for (int i = 0; i < 200; ++i) window.record(i * 10.0);  // 100 rps
  EXPECT_NEAR(window.rate(1999.0), 100.0, 5.0);
}

TEST(ArrivalWindow, BoundaryExactlyAtCutoff) {
  ArrivalWindow window(1000.0);
  window.record(0.0);
  // Event exactly at now - window is evicted (strictly trailing window).
  EXPECT_EQ(window.count_in_window(1000.0), 0);
  ArrivalWindow window2(1000.0);
  window2.record(1.0);
  EXPECT_EQ(window2.count_in_window(1000.0), 1);
}

}  // namespace
}  // namespace paldia::predictor
