#include "src/predictor/ewma.hpp"

#include <gtest/gtest.h>

namespace paldia::predictor {
namespace {

TEST(Ewma, FirstObservationPrimesLevel) {
  EwmaPredictor predictor;
  predictor.observe(0.0, 40.0);
  EXPECT_DOUBLE_EQ(predictor.level(), 40.0);
  EXPECT_DOUBLE_EQ(predictor.predict(0.0, 1000.0), 40.0);
}

TEST(Ewma, ConvergesToConstantRate) {
  EwmaPredictor predictor(0.4, 0.2);
  for (int i = 0; i < 50; ++i) predictor.observe(i * 1000.0, 100.0);
  EXPECT_NEAR(predictor.level(), 100.0, 1e-6);
  EXPECT_NEAR(predictor.predict(50'000.0, 4000.0), 100.0, 1.0);
}

TEST(Ewma, SmoothsNoise) {
  EwmaPredictor predictor(0.3, 0.0);
  for (int i = 0; i < 100; ++i) {
    predictor.observe(i * 1000.0, i % 2 == 0 ? 80.0 : 120.0);
  }
  EXPECT_NEAR(predictor.level(), 100.0, 12.0);
}

TEST(Ewma, TrendExtrapolatesRamps) {
  EwmaPredictor predictor(0.5, 0.35);
  // Ramp 10 rps per second.
  for (int i = 0; i <= 20; ++i) predictor.observe(i * 1000.0, 10.0 * i);
  const double now = 20'000.0;
  const double horizon = 4000.0;
  const double no_trend = predictor.level();
  const double with_trend = predictor.predict(now, horizon);
  EXPECT_GT(with_trend, no_trend + 10.0);  // anticipates the climb
  // But bounded: not wildly above the true future value (240 at +4 s).
  EXPECT_LT(with_trend, 400.0);
}

TEST(Ewma, PredictionNeverNegative) {
  EwmaPredictor predictor(0.5, 0.35);
  for (int i = 0; i <= 10; ++i) predictor.observe(i * 1000.0, 100.0 - 10.0 * i);
  EXPECT_GE(predictor.predict(10'000.0, 60'000.0), 0.0);
}

TEST(Ewma, ZeroTrendAlphaIsClassicEwma) {
  EwmaPredictor predictor(0.5, 0.0);
  predictor.observe(0.0, 100.0);
  predictor.observe(1000.0, 0.0);
  EXPECT_NEAR(predictor.level(), 50.0, 1e-9);
  EXPECT_NEAR(predictor.predict(1000.0, 100'000.0), 50.0, 1e-9);
}

TEST(Ewma, IgnoresDuplicateAndOutOfOrderObservations) {
  // Sharded delivery can replay a monitor sample (same now) or hand one in
  // late (now < last). Both are stale: the predictor state must not move.
  EwmaPredictor predictor(0.5, 0.35);
  predictor.observe(0.0, 100.0);
  predictor.observe(1000.0, 110.0);
  const double level = predictor.level();
  const double trend = predictor.trend_per_ms();
  predictor.observe(1000.0, 500.0);  // duplicate timestamp
  EXPECT_EQ(predictor.level(), level);
  EXPECT_EQ(predictor.trend_per_ms(), trend);
  predictor.observe(400.0, 999.0);  // out of order
  EXPECT_EQ(predictor.level(), level);
  EXPECT_EQ(predictor.trend_per_ms(), trend);
  // A genuinely newer observation still updates.
  predictor.observe(2000.0, 120.0);
  EXPECT_NE(predictor.level(), level);
}

TEST(Ewma, ClampsTrendTickForNearDuplicateTimestamps) {
  // dt is clamped to one tick, so two samples 0.25 ms apart produce the
  // same (finite, sane) trend as samples a full tick apart — the divide
  // can neither blow up nor flip sign.
  EwmaPredictor a(0.5, 0.35);
  a.observe(0.0, 100.0);
  a.observe(0.25, 200.0);
  EwmaPredictor b(0.5, 0.35);
  b.observe(0.0, 100.0);
  b.observe(1.0, 200.0);
  EXPECT_EQ(a.level(), b.level());
  EXPECT_EQ(a.trend_per_ms(), b.trend_per_ms());
  EXPECT_GT(a.trend_per_ms(), 0.0);
  EXPECT_LT(a.trend_per_ms(), 100.0);
}

TEST(Ewma, StaleObservationBeforePrimingStillPrimes) {
  // The -1 sentinel means the very first observation always primes, even
  // at t = 0.
  EwmaPredictor predictor;
  predictor.observe(0.0, 40.0);
  EXPECT_DOUBLE_EQ(predictor.level(), 40.0);
}

TEST(LastValue, ReturnsLastObservation) {
  LastValuePredictor predictor;
  predictor.observe(0.0, 5.0);
  predictor.observe(1.0, 9.0);
  EXPECT_EQ(predictor.predict(2.0, 1000.0), 9.0);
}

TEST(Predictor, PolymorphicUse) {
  EwmaPredictor ewma;
  Predictor& predictor = ewma;
  predictor.observe(0.0, 10.0);
  EXPECT_GT(predictor.predict(0.0, 1000.0), 0.0);
}

}  // namespace
}  // namespace paldia::predictor
