#include "src/hw/power_model.hpp"

#include <gtest/gtest.h>

#include "src/hw/catalog.hpp"

namespace paldia::hw {
namespace {

TEST(PowerModel, IdleIsSumOfIdleComponents) {
  const auto& spec = Catalog::instance().spec(NodeType::kP3_2xlarge);
  PowerModel model(spec);
  EXPECT_DOUBLE_EQ(model.idle_power(), spec.cpu.idle_power + spec.gpu->idle_power);
}

TEST(PowerModel, PeakIsSumOfPeakComponents) {
  const auto& spec = Catalog::instance().spec(NodeType::kP3_2xlarge);
  PowerModel model(spec);
  EXPECT_DOUBLE_EQ(model.peak_power(), spec.cpu.peak_power + spec.gpu->peak_power);
}

TEST(PowerModel, LinearInUtilization) {
  const auto& spec = Catalog::instance().spec(NodeType::kG3s_xlarge);
  PowerModel model(spec);
  const Watts at_half = model.power(0.5, 0.5);
  EXPECT_NEAR(at_half, (model.idle_power() + model.peak_power()) / 2.0, 1e-9);
}

TEST(PowerModel, CpuOnlyNodeIgnoresGpuUtil) {
  const auto& spec = Catalog::instance().spec(NodeType::kC6i_4xlarge);
  PowerModel model(spec);
  EXPECT_DOUBLE_EQ(model.power(0.3, 0.0), model.power(0.3, 0.9));
}

TEST(PowerModel, UtilizationClamped) {
  const auto& spec = Catalog::instance().spec(NodeType::kP2_xlarge);
  PowerModel model(spec);
  EXPECT_DOUBLE_EQ(model.power(-1.0, -1.0), model.idle_power());
  EXPECT_DOUBLE_EQ(model.power(2.0, 2.0), model.peak_power());
}

TEST(PowerModel, V100NodeDrawsMoreThanM60NodeAtFullLoad) {
  PowerModel v100(Catalog::instance().spec(NodeType::kP3_2xlarge));
  PowerModel m60(Catalog::instance().spec(NodeType::kG3s_xlarge));
  EXPECT_GT(v100.peak_power(), m60.peak_power());
}

TEST(PowerModel, MonotoneInUtilization) {
  PowerModel model(Catalog::instance().spec(NodeType::kP3_2xlarge));
  Watts previous = -1.0;
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const Watts draw = model.power(u, u);
    EXPECT_GT(draw, previous);
    previous = draw;
  }
}

}  // namespace
}  // namespace paldia::hw
