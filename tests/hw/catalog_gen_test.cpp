#include "src/hw/catalog_gen.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace paldia::hw {
namespace {

TEST(CatalogGen, DeterministicInConfig) {
  CatalogGenConfig config;
  config.node_count = 48;
  config.seed = 1234;
  const auto a = generate_specs(config);
  const auto b = generate_specs(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].instance, b[i].instance);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].price_per_hour, b[i].price_per_hour);
    EXPECT_EQ(a[i].family, b[i].family);
  }
}

TEST(CatalogGen, SeedChangesTheCatalog) {
  CatalogGenConfig config;
  config.node_count = 48;
  config.seed = 1;
  const auto a = generate_specs(config);
  config.seed = 2;
  const auto b = generate_specs(config);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].instance != b[i].instance ||
              a[i].price_per_hour != b[i].price_per_hour;
  }
  EXPECT_TRUE(differs);
}

TEST(CatalogGen, CountClampedAndFirstNodeIsCpu) {
  CatalogGenConfig config;
  config.node_count = 1;  // below the [2, 256] floor
  auto specs = generate_specs(config);
  EXPECT_EQ(specs.size(), 2u);
  config.node_count = 10'000;
  specs = generate_specs(config);
  EXPECT_EQ(specs.size(), 256u);
  // Node 0 is always a CPU node so every catalog can serve Algorithm 1's
  // CPU short-circuit and the CPU-only degrade path.
  EXPECT_FALSE(specs.front().is_gpu());
}

TEST(CatalogGen, GpuFractionRoughlyHonored) {
  CatalogGenConfig config;
  config.node_count = 100;
  config.gpu_fraction = 0.6;
  const auto specs = generate_specs(config);
  int gpus = 0;
  for (const auto& spec : specs) gpus += spec.is_gpu() ? 1 : 0;
  EXPECT_GE(gpus, 50);
  EXPECT_LE(gpus, 70);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.is_gpu(), spec.gpu.has_value());
    EXPECT_GT(spec.price_per_hour, 0.0);
    EXPECT_FALSE(spec.family.empty());
    EXPECT_GT(spec.cpu.vcpus, 0);
  }
}

TEST(CatalogGen, TwinsShareSiliconAtHigherPrice) {
  CatalogGenConfig config;
  config.node_count = 96;
  config.twin_fraction = 0.4;
  const auto specs = generate_specs(config);
  std::map<std::string, const NodeSpec*> by_name;
  for (const auto& spec : specs) by_name[spec.instance] = &spec;
  // Generated regional variants carry a ".r<i>" suffix; each must reference
  // an existing base node, share its profile-relevant silicon exactly, and
  // never undercut its price (the "≥ price, ≤ capability" rows dominance
  // pruning exists for). Quantized bins can also collide between
  // independently drawn nodes — those are twins to the pruner too, but
  // carry no price ordering.
  int twins = 0;
  for (const auto& spec : specs) {
    const auto dot_r = spec.instance.rfind(".r");
    if (dot_r == std::string::npos) continue;
    const auto base_it = by_name.find(spec.instance.substr(0, dot_r));
    if (base_it == by_name.end()) continue;  // nested twin: base is a twin
    const NodeSpec& base = *base_it->second;
    ++twins;
    ASSERT_EQ(spec.is_gpu(), base.is_gpu());
    if (spec.is_gpu()) {
      EXPECT_DOUBLE_EQ(spec.gpu->speed, base.gpu->speed);
      EXPECT_DOUBLE_EQ(spec.gpu->mem_bandwidth_gbps, base.gpu->mem_bandwidth_gbps);
    } else {
      EXPECT_EQ(spec.cpu.vcpus, base.cpu.vcpus);
      EXPECT_DOUBLE_EQ(spec.cpu.per_core_speed, base.cpu.per_core_speed);
    }
    EXPECT_GE(spec.price_per_hour, base.price_per_hour) << spec.instance;
  }
  EXPECT_GT(twins, 0) << "twin_fraction=0.4 produced no twin nodes";
}

TEST(CatalogGen, GeneratedCatalogIndexesWork) {
  CatalogGenConfig config;
  config.node_count = 32;
  const Catalog catalog = generate_catalog(config);
  EXPECT_EQ(catalog.size(), 32u);
  EXPECT_EQ(catalog.by_cost_ascending().size(), 32u);
  for (std::size_t i = 1; i < catalog.by_cost_ascending().size(); ++i) {
    EXPECT_LE(catalog.spec(catalog.by_cost_ascending()[i - 1]).price_per_hour,
              catalog.spec(catalog.by_cost_ascending()[i]).price_per_hour);
  }
  // Instance names are unique — twin variants carry a region suffix.
  std::set<std::string> names;
  for (const auto& spec : catalog.all()) names.insert(spec.instance);
  EXPECT_EQ(names.size(), catalog.size());
  // Cost buckets tile the cost-ascending order exactly.
  std::size_t covered = 0;
  double previous_max = 0.0;
  for (const auto& bucket : catalog.cost_buckets()) {
    EXPECT_EQ(bucket.begin, covered);
    EXPECT_GT(bucket.end, bucket.begin);
    EXPECT_GE(bucket.min_price, previous_max);
    EXPECT_LE(bucket.min_price, bucket.max_price);
    previous_max = bucket.max_price;
    covered = bucket.end;
  }
  EXPECT_EQ(covered, catalog.size());
  ASSERT_TRUE(catalog.most_performant_gpu().has_value());
  const auto top = *catalog.most_performant_gpu();
  for (hw::NodeType gpu : catalog.gpus_by_capability_ascending()) {
    EXPECT_LE(catalog.spec(gpu).gpu->speed, catalog.spec(top).gpu->speed);
  }
}

TEST(CatalogGen, ParseCatalogSpec) {
  std::string error;
  EXPECT_FALSE(parse_catalog_spec("table2", &error).has_value());
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(parse_catalog_spec("", &error).has_value());
  EXPECT_TRUE(error.empty());

  auto config = parse_catalog_spec("gen:64", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->node_count, 64);

  config = parse_catalog_spec("gen:32:seed=9:gpu=0.8", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_EQ(config->node_count, 32);
  EXPECT_EQ(config->seed, 9u);
  EXPECT_DOUBLE_EQ(config->gpu_fraction, 0.8);

  config = parse_catalog_spec("gen:16:twins=0.5:noise=0.2:seed=3", &error);
  ASSERT_TRUE(config.has_value()) << error;
  EXPECT_DOUBLE_EQ(config->twin_fraction, 0.5);
  EXPECT_DOUBLE_EQ(config->price_noise, 0.2);

  EXPECT_FALSE(parse_catalog_spec("gen:", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_catalog_spec("gen:abc", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_catalog_spec("gen:64:bogus=1", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_catalog_spec("flux:64", &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace paldia::hw
