#include "src/hw/catalog.hpp"

#include <gtest/gtest.h>

namespace paldia::hw {
namespace {

TEST(Catalog, HasAllSixTableIINodes) {
  const Catalog& catalog = Catalog::instance();
  EXPECT_EQ(catalog.all().size(), static_cast<std::size_t>(kNodeTypeCount));
  EXPECT_EQ(catalog.spec(NodeType::kP3_2xlarge).instance, "p3.2xlarge");
  EXPECT_EQ(catalog.spec(NodeType::kM4_xlarge).instance, "m4.xlarge");
}

TEST(Catalog, TableIIPrices) {
  const Catalog& catalog = Catalog::instance();
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kP3_2xlarge).price_per_hour, 3.06);
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kP2_xlarge).price_per_hour, 0.90);
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kG3s_xlarge).price_per_hour, 0.75);
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kC6i_4xlarge).price_per_hour, 0.68);
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kC6i_2xlarge).price_per_hour, 0.34);
  EXPECT_DOUBLE_EQ(catalog.spec(NodeType::kM4_xlarge).price_per_hour, 0.20);
}

TEST(Catalog, GpuNodesHaveGpuSpecs) {
  const Catalog& catalog = Catalog::instance();
  for (const auto& spec : catalog.all()) {
    EXPECT_EQ(spec.is_gpu(), spec.gpu.has_value());
  }
  EXPECT_EQ(catalog.spec(NodeType::kP3_2xlarge).gpu->name, "V100");
  EXPECT_EQ(catalog.spec(NodeType::kP2_xlarge).gpu->name, "K80");
  EXPECT_EQ(catalog.spec(NodeType::kG3s_xlarge).gpu->name, "M60");
}

TEST(Catalog, ByCostAscendingOrdering) {
  const auto order = Catalog::instance().by_cost_ascending();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kNodeTypeCount));
  EXPECT_EQ(order.front(), NodeType::kM4_xlarge);   // $0.20
  EXPECT_EQ(order.back(), NodeType::kP3_2xlarge);   // $3.06
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(Catalog::instance().spec(order[i - 1]).price_per_hour,
              Catalog::instance().spec(order[i]).price_per_hour);
  }
}

TEST(Catalog, GpusByCapability) {
  const auto gpus = Catalog::instance().gpus_by_capability_ascending();
  ASSERT_EQ(gpus.size(), 3u);
  EXPECT_EQ(gpus[0], NodeType::kP2_xlarge);  // K80 weakest
  EXPECT_EQ(gpus[1], NodeType::kG3s_xlarge);
  EXPECT_EQ(gpus[2], NodeType::kP3_2xlarge);
}

TEST(Catalog, MostPerformantGpuIsV100) {
  EXPECT_EQ(Catalog::instance().most_performant_gpu(), NodeType::kP3_2xlarge);
}

TEST(Catalog, V100IsReferenceSpeed) {
  EXPECT_DOUBLE_EQ(Catalog::instance().spec(NodeType::kP3_2xlarge).gpu->speed, 1.0);
}

TEST(Catalog, GpuBandwidthOrderingMatchesDatasheets) {
  const Catalog& catalog = Catalog::instance();
  const double v100 = catalog.spec(NodeType::kP3_2xlarge).gpu->mem_bandwidth_gbps;
  const double k80 = catalog.spec(NodeType::kP2_xlarge).gpu->mem_bandwidth_gbps;
  const double m60 = catalog.spec(NodeType::kG3s_xlarge).gpu->mem_bandwidth_gbps;
  EXPECT_GT(v100, k80);
  EXPECT_GT(k80, m60);
}

TEST(Catalog, DisplayNames) {
  const Catalog& catalog = Catalog::instance();
  EXPECT_EQ(catalog.spec(NodeType::kP3_2xlarge).display_name(), "V100");
  EXPECT_NE(catalog.spec(NodeType::kC6i_4xlarge).display_name().find("IceLake"),
            std::string::npos);
}

TEST(Catalog, CustomCatalogRejectsEmpty) {
  EXPECT_THROW(Catalog(std::vector<NodeSpec>{}), std::invalid_argument);
}

TEST(Catalog, NodeTypeNames) {
  EXPECT_EQ(node_type_name(NodeType::kG3s_xlarge), "g3s.xlarge");
  EXPECT_EQ(node_type_name(NodeType::kC6i_2xlarge), "c6i.2xlarge");
}

}  // namespace
}  // namespace paldia::hw
