// The sharded drain's contract: for any schedule/cancel/periodic workload,
// any shard count, any lookahead, and with or without the executor, every
// callback fires at the same simulated time in the same order as the serial
// single-queue drain. The suites here drive identical workload scripts
// through different Simulator configurations and compare complete firing
// logs.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/thread_pool.hpp"
#include "src/sim/simulator.hpp"

namespace paldia::sim {
namespace {

using FiringLog = std::vector<std::pair<TimeMs, int>>;

/// Deterministic random workload: every fired event logs (now, tag) and may
/// schedule children across shards, start periodic series, cancel saved
/// handles, or chain zero-delay follow-ups. The script consumes its Rng in
/// firing order, so any ordering divergence between two configurations
/// cascades into visibly different logs.
class ChurnDriver {
 public:
  ChurnDriver(Simulator& simulator, FiringLog& log, std::uint64_t seed)
      : simulator_(&simulator), log_(&log), rng_(seed) {}

  void seed_initial(int count) {
    for (int i = 0; i < count; ++i) {
      schedule_child(rng_.uniform(0.0, 40.0));
    }
    // A few periodic series spread over the shards, some self-stopping.
    for (int i = 0; i < 6; ++i) {
      const int shard = i % 5;
      const DurationMs period = 3.0 + static_cast<double>(i);
      const int tag = next_tag_++;
      const int stop_after = (i % 2 == 0) ? 9 : 1000;
      periodic_handles_.push_back(simulator_->schedule_repeating(
          1.0 + i, period,
          [this, tag, fired = 0, stop_after]() mutable {
            log_->emplace_back(simulator_->now(), tag);
            return ++fired < stop_after;
          },
          shard));
    }
  }

  int spawned() const { return spawned_; }

 private:
  void schedule_child(DurationMs delay) {
    if (spawned_ >= kMaxSpawned) return;
    ++spawned_;
    const int tag = next_tag_++;
    const int shard = static_cast<int>(rng_.uniform(0.0, 5.0));
    const EventHandle handle = simulator_->schedule_in(
        std::max(0.0, delay), [this, tag] { fire(tag); }, shard);
    if (static_cast<int>(rng_.uniform(0.0, 4.0)) == 0) {
      saved_handles_.push_back(handle);
    }
  }

  void fire(int tag) {
    log_->emplace_back(simulator_->now(), tag);
    const int children = static_cast<int>(rng_.uniform(0.0, 3.0));
    for (int i = 0; i < children; ++i) {
      // Mix zero-delay chains, sub-lookahead, and cross-epoch delays.
      const int kind = static_cast<int>(rng_.uniform(0.0, 3.0));
      const DurationMs delay = kind == 0   ? 0.0
                               : kind == 1 ? rng_.uniform(0.0, 5.0)
                                           : rng_.uniform(5.0, 120.0);
      schedule_child(delay);
    }
    if (!saved_handles_.empty() &&
        static_cast<int>(rng_.uniform(0.0, 3.0)) == 0) {
      const auto pick = static_cast<std::size_t>(
          rng_.uniform(0.0, static_cast<double>(saved_handles_.size())));
      saved_handles_[pick].cancel();
      saved_handles_.erase(saved_handles_.begin() +
                           static_cast<std::ptrdiff_t>(pick));
    }
    if (!periodic_handles_.empty() &&
        static_cast<int>(rng_.uniform(0.0, 40.0)) == 0) {
      periodic_handles_.back().cancel();
      periodic_handles_.pop_back();
    }
  }

  static constexpr int kMaxSpawned = 4000;

  Simulator* simulator_;
  FiringLog* log_;
  Rng rng_;
  std::vector<EventHandle> saved_handles_;
  std::vector<Simulator::PeriodicHandle> periodic_handles_;
  int next_tag_ = 0;
  int spawned_ = 0;
};

/// Run the churn script on a simulator built from `options`, stepping
/// through several run_until boundaries before draining completely.
FiringLog run_churn(const ShardOptions& options, std::uint64_t seed,
                    std::size_t* events_processed = nullptr) {
  Simulator simulator(options);
  FiringLog log;
  ChurnDriver driver(simulator, log, seed);
  driver.seed_initial(64);
  simulator.run_until(50.0);
  simulator.run_until(50.0);  // idempotent boundary
  simulator.run_until(333.3);
  simulator.run_to_completion();
  if (events_processed != nullptr) *events_processed = simulator.events_processed();
  return log;
}

TEST(ShardedSimulator, MatchesSerialUnderRandomChurn) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    std::size_t serial_events = 0;
    const FiringLog serial = run_churn(ShardOptions{}, seed, &serial_events);
    ASSERT_FALSE(serial.empty());
    for (const int shards : {2, 4, 7}) {
      ShardOptions options;
      options.shards = shards;
      std::size_t sharded_events = 0;
      const FiringLog sharded = run_churn(options, seed, &sharded_events);
      ASSERT_EQ(serial, sharded) << "shards=" << shards << " seed=" << seed;
      EXPECT_EQ(serial_events, sharded_events);
    }
  }
}

TEST(ShardedSimulator, OrderIndependentOfLookahead) {
  const FiringLog serial = run_churn(ShardOptions{}, 99);
  for (const DurationMs lookahead : {0.0, 0.5, 7.0, 1e6}) {
    ShardOptions options;
    options.shards = 4;
    options.lookahead_ms = lookahead;
    EXPECT_EQ(serial, run_churn(options, 99)) << "lookahead=" << lookahead;
  }
}

TEST(ShardedSimulator, MatchesSerialWithExecutorExtraction) {
  ThreadPool pool(4);
  const FiringLog serial = run_churn(ShardOptions{}, 2026);
  ShardOptions options;
  options.shards = 4;
  options.pool = &pool;
  EXPECT_EQ(serial, run_churn(options, 2026));
}

TEST(ShardedSimulator, ZeroDelayChainsKeepSubmissionOrder) {
  ShardOptions options;
  options.shards = 3;
  Simulator simulator(options);
  std::vector<int> order;
  simulator.schedule_at(
      10.0,
      [&] {
        // Zero-delay follow-ups land on other shards but must still run in
        // submission order, interleaved before anything later.
        simulator.schedule_in(0.0, [&] { order.push_back(1); }, 1);
        simulator.schedule_in(0.0, [&] { order.push_back(2); }, 2);
        simulator.schedule_in(
            0.0,
            [&] {
              order.push_back(3);
              simulator.schedule_in(0.0, [&] { order.push_back(4); }, 2);
            },
            1);
      },
      1);
  simulator.schedule_at(10.5, [&] { order.push_back(5); }, 2);
  simulator.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(simulator.events_processed(), 6u);
}

TEST(ShardedSimulator, CrossShardScheduleBeyondWindowFires) {
  ShardOptions options;
  options.shards = 4;
  options.lookahead_ms = 5.0;
  Simulator simulator(options);
  std::vector<std::pair<TimeMs, int>> log;
  // Shard 1 -> shard 3, far past the epoch window: must travel through the
  // mailbox and fire at the exact requested time.
  simulator.schedule_at(
      2.0,
      [&] {
        log.emplace_back(simulator.now(), 0);
        simulator.schedule_in(100.0, [&] { log.emplace_back(simulator.now(), 1); },
                              3);
      },
      1);
  simulator.run_to_completion();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0].first, 2.0);
  EXPECT_DOUBLE_EQ(log[1].first, 102.0);
}

TEST(ShardedSimulator, CancelAcrossShardsWithinOneEpoch) {
  ShardOptions options;
  options.shards = 4;
  options.lookahead_ms = 50.0;  // both events extract in the same epoch
  Simulator simulator(options);
  bool victim_fired = false;
  EventHandle victim = simulator.schedule_at(
      6.0, [&] { victim_fired = true; }, 2);
  simulator.schedule_at(5.0, [&] { victim.cancel(); }, 1);
  simulator.run_to_completion();
  EXPECT_FALSE(victim_fired);
  EXPECT_TRUE(victim.cancelled());
  EXPECT_EQ(simulator.events_processed(), 1u);
}

TEST(ShardedSimulator, CancelIntraWindowInsertBeforeItRuns) {
  ShardOptions options;
  options.shards = 2;
  options.lookahead_ms = 50.0;
  Simulator simulator(options);
  bool fired = false;
  EventHandle staged;
  simulator.schedule_at(
      1.0,
      [&] {
        // Scheduled inside the executing window (an insert-heap entry)...
        staged = simulator.schedule_in(2.0, [&] { fired = true; }, 1);
      },
      0);
  // ...and cancelled by a later event in the same window, before it fires.
  simulator.schedule_at(2.0, [&] { staged.cancel(); }, 1);
  simulator.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.events_processed(), 2u);
}

TEST(ShardedSimulator, RunUntilBoundarySemanticsMatchSerial) {
  for (const int shards : {1, 4}) {
    ShardOptions options;
    options.shards = shards;
    options.lookahead_ms = 3.0;
    Simulator simulator(options);
    std::vector<int> fired;
    simulator.schedule_at(10.0, [&] { fired.push_back(0); }, 1);
    simulator.schedule_at(20.0, [&] { fired.push_back(1); }, 2);
    simulator.schedule_at(20.0, [&] { fired.push_back(2); }, 0);
    simulator.schedule_at(20.0001, [&] { fired.push_back(3); }, 1);
    EXPECT_DOUBLE_EQ(simulator.run_until(20.0), 20.0);
    // Events exactly at the boundary run; the next one does not.
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2})) << "shards=" << shards;
    EXPECT_DOUBLE_EQ(simulator.now(), 20.0);
    simulator.run_to_completion();
    EXPECT_EQ(fired.size(), 4u);
    EXPECT_DOUBLE_EQ(simulator.now(), 20.0001);
  }
}

TEST(ShardedSimulator, PeriodicSeriesOnWorkerShard) {
  ShardOptions options;
  options.shards = 3;
  options.lookahead_ms = 4.0;
  Simulator simulator(options);
  int ticks = 0;
  auto handle = simulator.schedule_every(
      5.0, 10.0, [&] { ++ticks; }, 2);
  simulator.run_until(100.0);
  EXPECT_EQ(ticks, 10);  // t = 5, 15, ..., 95
  handle.cancel();
  simulator.run_until(200.0);
  EXPECT_EQ(ticks, 10);
}

TEST(ShardedSimulator, ShardOfRoundRobinsOverWorkerShards) {
  ShardOptions options;
  options.shards = 4;
  const Simulator simulator(options);
  EXPECT_EQ(simulator.shard_count(), 4);
  EXPECT_EQ(simulator.shard_of(0), 1);
  EXPECT_EQ(simulator.shard_of(1), 2);
  EXPECT_EQ(simulator.shard_of(2), 3);
  EXPECT_EQ(simulator.shard_of(3), 1);

  const Simulator serial;
  EXPECT_EQ(serial.shard_count(), 1);
  EXPECT_EQ(serial.shard_of(0), 0);
  EXPECT_EQ(serial.shard_of(5), 0);
}

TEST(ShardedSimulator, OutOfRangeShardClampsAndStillFires) {
  ShardOptions options;
  options.shards = 3;
  Simulator simulator(options);
  int fired = 0;
  simulator.schedule_at(1.0, [&] { ++fired; }, 99);
  simulator.schedule_at(1.0, [&] { ++fired; }, -7);
  simulator.run_to_completion();
  EXPECT_EQ(fired, 2);
}

TEST(ShardedSimulator, ResetClearsEveryShardAndInvalidatesHandles) {
  ShardOptions options;
  options.shards = 4;
  Simulator simulator(options);
  int fired = 0;
  simulator.schedule_at(5.0, [&] { ++fired; }, 1);
  EventHandle stale = simulator.schedule_at(6.0, [&] { ++fired; }, 3);
  auto stale_periodic = simulator.schedule_every(1.0, 1.0, [&] { ++fired; }, 2);
  simulator.reset();
  EXPECT_DOUBLE_EQ(simulator.now(), 0.0);
  simulator.run_to_completion();
  EXPECT_EQ(fired, 0);
  // Handles from before the reset are inert, not dangling.
  stale.cancel();
  stale_periodic.cancel();
  int after = 0;
  simulator.schedule_at(2.0, [&] { ++after; }, 3);
  simulator.run_to_completion();
  EXPECT_EQ(after, 1);
  EXPECT_DOUBLE_EQ(simulator.now(), 2.0);
}

TEST(ShardedSimulator, RunToCompletionFinalTimeMatchesSerial) {
  for (const std::uint64_t seed : {3ull, 21ull}) {
    Simulator serial;
    FiringLog serial_log;
    ChurnDriver serial_driver(serial, serial_log, seed);
    serial_driver.seed_initial(32);
    const TimeMs serial_end = serial.run_to_completion();

    ShardOptions options;
    options.shards = 5;
    options.lookahead_ms = 2.5;
    Simulator sharded(options);
    FiringLog sharded_log;
    ChurnDriver sharded_driver(sharded, sharded_log, seed);
    sharded_driver.seed_initial(32);
    const TimeMs sharded_end = sharded.run_to_completion();

    EXPECT_DOUBLE_EQ(serial_end, sharded_end);
    EXPECT_EQ(serial_log, sharded_log);
  }
}

}  // namespace
}  // namespace paldia::sim
