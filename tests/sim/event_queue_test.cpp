#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30.0, [&] { order.push_back(3); });
  queue.schedule(10.0, [&] { order.push_back(1); });
  queue.schedule(20.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySubmissionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(1.0, [&] { fired = true; });
  handle.cancel();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelBelowTopStillSkipped) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] { order.push_back(1); });
  EventHandle mid = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  mid.cancel();
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue queue;
  EventHandle handle = queue.schedule(1.0, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(handle.cancelled());
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.cancelled());
  handle.cancel();  // no-op
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  EventHandle first = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  first.cancel();
  EXPECT_EQ(queue.next_time(), 5.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue queue;
  queue.schedule(7.5, [] {});
  auto fired = queue.pop();
  EXPECT_EQ(fired.time, 7.5);
}

TEST(EventQueue, CancelFromInsideFiringEvent) {
  // Cancel-under-pop regression: an event's callback cancels a later event
  // while the queue is mid-drain. The old implementation mutated
  // priority_queue::top() through a const_cast (UB); the owned-heap version
  // must simply skip the tombstone.
  EventQueue queue;
  std::vector<int> order;
  EventHandle second;
  queue.schedule(1.0, [&] {
    order.push_back(1);
    second.cancel();
  });
  second = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTopThenPopSkipsIt) {
  EventQueue queue;
  std::vector<int> order;
  EventHandle top = queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  top.cancel();
  EXPECT_EQ(queue.next_time(), 2.0);
  auto fired = queue.pop();
  fired.fn();
  EXPECT_EQ(fired.time, 2.0);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, InterleavedScheduleCancelPopStress) {
  // Device-sim shape: pops interleaved with fresh schedules and cancels of
  // events still buried in the heap.
  EventQueue queue;
  std::vector<double> fired_times;
  std::vector<EventHandle> handles;
  std::vector<char> done;  // done[i]: handle i's event already fired
  double clock = 0.0;
  auto schedule_at = [&](double t) {
    const std::size_t index = handles.size();
    done.push_back(0);
    handles.push_back(queue.schedule(t, [&, t, index] {
      fired_times.push_back(t);
      done[index] = 1;
    }));
  };
  for (int i = 0; i < 200; ++i) schedule_at(static_cast<double>((i * 31) % 500));
  std::size_t cancelled = 0;
  int step = 0;
  while (!queue.empty()) {
    auto event = queue.pop();
    EXPECT_GE(event.time, clock);
    clock = event.time;
    event.fn();
    ++step;
    if (step % 3 == 0 && step < 300) {
      schedule_at(clock + static_cast<double>((step * 17) % 50));
    }
    if (step % 5 == 0) {
      // Cancel the newest handle whose event has not fired yet, if any.
      for (std::size_t i = handles.size(); i-- > 0;) {
        if (!done[i] && !handles[i].cancelled()) {
          handles[i].cancel();
          ++cancelled;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(fired_times.size() + cancelled, handles.size());
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  std::vector<double> times;
  for (int i = 0; i < 10'000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    queue.schedule(t, [&times, t] { times.push_back(t); });
  }
  while (!queue.empty()) queue.pop().fn();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 10'000u);
}

}  // namespace
}  // namespace paldia::sim
