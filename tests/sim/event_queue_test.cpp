#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace paldia::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30.0, [&] { order.push_back(3); });
  queue.schedule(10.0, [&] { order.push_back(1); });
  queue.schedule(20.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySubmissionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(1.0, [&] { fired = true; });
  handle.cancel();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelBelowTopStillSkipped) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] { order.push_back(1); });
  EventHandle mid = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  mid.cancel();
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue queue;
  EventHandle handle = queue.schedule(1.0, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(handle.cancelled());
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.cancelled());
  handle.cancel();  // no-op
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  EventHandle first = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  first.cancel();
  EXPECT_EQ(queue.next_time(), 5.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue queue;
  queue.schedule(7.5, [] {});
  auto fired = queue.pop();
  EXPECT_EQ(fired.time, 7.5);
}

TEST(EventQueue, CancelFromInsideFiringEvent) {
  // Cancel-under-pop regression: an event's callback cancels a later event
  // while the queue is mid-drain. The old implementation mutated
  // priority_queue::top() through a const_cast (UB); the owned-heap version
  // must simply skip the tombstone.
  EventQueue queue;
  std::vector<int> order;
  EventHandle second;
  queue.schedule(1.0, [&] {
    order.push_back(1);
    second.cancel();
  });
  second = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTopThenPopSkipsIt) {
  EventQueue queue;
  std::vector<int> order;
  EventHandle top = queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  top.cancel();
  EXPECT_EQ(queue.next_time(), 2.0);
  auto fired = queue.pop();
  fired.fn();
  EXPECT_EQ(fired.time, 2.0);
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, InterleavedScheduleCancelPopStress) {
  // Device-sim shape: pops interleaved with fresh schedules and cancels of
  // events still buried in the heap.
  EventQueue queue;
  std::vector<double> fired_times;
  std::vector<EventHandle> handles;
  std::vector<char> done;  // done[i]: handle i's event already fired
  double clock = 0.0;
  auto schedule_at = [&](double t) {
    const std::size_t index = handles.size();
    done.push_back(0);
    handles.push_back(queue.schedule(t, [&, t, index] {
      fired_times.push_back(t);
      done[index] = 1;
    }));
  };
  for (int i = 0; i < 200; ++i) schedule_at(static_cast<double>((i * 31) % 500));
  std::size_t cancelled = 0;
  int step = 0;
  while (!queue.empty()) {
    auto event = queue.pop();
    EXPECT_GE(event.time, clock);
    clock = event.time;
    event.fn();
    ++step;
    if (step % 3 == 0 && step < 300) {
      schedule_at(clock + static_cast<double>((step * 17) % 50));
    }
    if (step % 5 == 0) {
      // Cancel the newest handle whose event has not fired yet, if any.
      for (std::size_t i = handles.size(); i-- > 0;) {
        if (!done[i] && !handles[i].cancelled()) {
          handles[i].cancel();
          ++cancelled;
          break;
        }
      }
    }
  }
  EXPECT_TRUE(std::is_sorted(fired_times.begin(), fired_times.end()));
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(fired_times.size() + cancelled, handles.size());
}

TEST(EventQueue, StaleHandleAfterRecycleIsNoOp) {
  // A handle kept past its event's firing must stay inert even once the
  // slot is reused: the generation bump on release makes the stale cancel
  // miss, so it cannot kill the slot's new occupant.
  EventQueue queue;
  bool first_fired = false;
  EventHandle stale = queue.schedule(1.0, [&] { first_fired = true; });
  queue.pop().fn();
  EXPECT_TRUE(first_fired);
  EXPECT_TRUE(queue.empty());

  // The pool reuses the freed slot for the next event.
  bool second_fired = false;
  queue.schedule(2.0, [&] { second_fired = true; });
  stale.cancel();  // stale generation: must not touch the recycled slot
  EXPECT_FALSE(stale.cancelled());
  EXPECT_FALSE(queue.empty());
  queue.pop().fn();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, StaleHandleAfterCancelAndRecycleIsNoOp) {
  // Same, but the slot was freed by a cancel rather than a pop, and two
  // copies of the handle race: the second copy's cancel lands after the
  // slot's recycle and must be a no-op.
  EventQueue queue;
  EventHandle original = queue.schedule(1.0, [] {});
  EventHandle copy = original;
  original.cancel();
  EXPECT_TRUE(original.cancelled());
  EXPECT_TRUE(queue.empty());

  bool fired = false;
  queue.schedule(2.0, [&] { fired = true; });
  copy.cancel();  // same slot index, old generation
  EXPECT_FALSE(copy.cancelled());
  queue.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, ClearInvalidatesOutstandingHandles) {
  EventQueue queue;
  EventHandle handle = queue.schedule(1.0, [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());

  bool fired = false;
  queue.schedule(1.0, [&] { fired = true; });
  handle.cancel();  // pre-clear generation: no-op
  EXPECT_FALSE(handle.cancelled());
  queue.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RandomizedChurnMatchesReferenceModel) {
  // Drive the pooled queue and a brute-force reference model (a plain list
  // ordered by (time, sequence)) through the same randomized script of
  // schedules, cancels and pops; the two must agree on every fired event.
  // The script covers cancel-of-buried, cancel-of-top, stale cancels of
  // already-fired events and heavy slot recycling.
  struct RefEvent {
    double time;
    std::uint64_t sequence;
    int id;
    bool cancelled = false;
    bool fired = false;
  };
  EventQueue queue;
  std::vector<RefEvent> reference;
  std::vector<EventHandle> handles;
  std::vector<int> queue_fired;
  std::uint64_t next_sequence = 0;

  std::uint64_t state = 0x2545F4914F6CDD1Dull;  // deterministic xorshift
  auto next_random = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  auto reference_pop = [&]() -> int {
    int best = -1;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto& event = reference[i];
      if (event.cancelled || event.fired) continue;
      if (best < 0 || event.time < reference[best].time ||
          (event.time == reference[best].time &&
           event.sequence < reference[best].sequence)) {
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) reference[best].fired = true;
    return best < 0 ? -1 : reference[best].id;
  };

  double clock = 0.0;
  for (int step = 0; step < 5000; ++step) {
    const auto roll = next_random() % 10;
    if (roll < 5) {  // schedule
      const double t = clock + static_cast<double>(next_random() % 64);
      const int id = static_cast<int>(reference.size());
      reference.push_back(RefEvent{t, next_sequence++, id});
      handles.push_back(queue.schedule(t, [&queue_fired, id] {
        queue_fired.push_back(id);
      }));
    } else if (roll < 8 && !reference.empty()) {  // cancel a random handle
      const std::size_t i = next_random() % reference.size();
      handles[i].cancel();  // no-op when already fired/cancelled
      if (!reference[i].fired) reference[i].cancelled = true;
    } else if (!queue.empty()) {  // pop
      auto event = queue.pop();
      EXPECT_GE(event.time, clock);
      clock = event.time;
      event.fn();
      const int expected = reference_pop();
      ASSERT_FALSE(queue_fired.empty());
      EXPECT_EQ(queue_fired.back(), expected);
    }
    EXPECT_EQ(queue.empty(),
              std::none_of(reference.begin(), reference.end(), [](const RefEvent& e) {
                return !e.cancelled && !e.fired;
              }));
  }
  while (!queue.empty()) {
    auto event = queue.pop();
    event.fn();
    EXPECT_EQ(queue_fired.back(), reference_pop());
  }
  EXPECT_EQ(reference_pop(), -1);  // reference drained too
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  std::vector<double> times;
  for (int i = 0; i < 10'000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    queue.schedule(t, [&times, t] { times.push_back(t); });
  }
  while (!queue.empty()) queue.pop().fn();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 10'000u);
}

}  // namespace
}  // namespace paldia::sim
