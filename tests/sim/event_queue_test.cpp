#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.next_time(), kTimeNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30.0, [&] { order.push_back(3); });
  queue.schedule(10.0, [&] { order.push_back(1); });
  queue.schedule(20.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakBySubmissionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  EventHandle handle = queue.schedule(1.0, [&] { fired = true; });
  handle.cancel();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelBelowTopStillSkipped) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&] { order.push_back(1); });
  EventHandle mid = queue.schedule(2.0, [&] { order.push_back(2); });
  queue.schedule(3.0, [&] { order.push_back(3); });
  mid.cancel();
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue queue;
  EventHandle handle = queue.schedule(1.0, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(handle.cancelled());
}

TEST(EventQueue, DefaultHandleIsInvalid) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.cancelled());
  handle.cancel();  // no-op
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue queue;
  EventHandle first = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  first.cancel();
  EXPECT_EQ(queue.next_time(), 5.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue queue;
  queue.schedule(7.5, [] {});
  auto fired = queue.pop();
  EXPECT_EQ(fired.time, 7.5);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue queue;
  std::vector<double> times;
  for (int i = 0; i < 10'000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    queue.schedule(t, [&times, t] { times.push_back(t); });
  }
  while (!queue.empty()) queue.pop().fn();
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_EQ(times.size(), 10'000u);
}

}  // namespace
}  // namespace paldia::sim
