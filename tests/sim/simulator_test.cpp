#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0.0);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator simulator;
  TimeMs fired_at = -1.0;
  simulator.schedule_in(100.0, [&] { fired_at = simulator.now(); });
  simulator.run_to_completion();
  EXPECT_EQ(fired_at, 100.0);
  EXPECT_EQ(simulator.now(), 100.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator simulator;
  simulator.schedule_in(50.0, [&] {
    simulator.schedule_in(-10.0, [&] { EXPECT_EQ(simulator.now(), 50.0); });
  });
  simulator.run_to_completion();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(10.0, [&] { ++fired; });
  simulator.schedule_at(20.0, [&] { ++fired; });
  simulator.schedule_at(30.0, [&] { ++fired; });
  simulator.run_until(20.0);  // events exactly at the boundary run
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.now(), 20.0);
  simulator.run_to_completion();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator simulator;
  simulator.run_until(500.0);
  EXPECT_EQ(simulator.now(), 500.0);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator simulator;
  std::vector<TimeMs> firings;
  std::function<void()> chain = [&] {
    firings.push_back(simulator.now());
    if (firings.size() < 5) simulator.schedule_in(10.0, chain);
  };
  simulator.schedule_at(0.0, chain);
  simulator.run_to_completion();
  EXPECT_EQ(firings, (std::vector<TimeMs>{0.0, 10.0, 20.0, 30.0, 40.0}));
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator simulator;
  std::vector<TimeMs> firings;
  simulator.schedule_every(100.0, 50.0, [&] { firings.push_back(simulator.now()); });
  simulator.run_until(300.0);
  EXPECT_EQ(firings, (std::vector<TimeMs>{100.0, 150.0, 200.0, 250.0, 300.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator simulator;
  int fired = 0;
  auto handle = simulator.schedule_every(0.0, 10.0, [&] { ++fired; });
  simulator.run_until(25.0);
  EXPECT_EQ(fired, 3);  // t = 0, 10, 20
  handle.cancel();
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator simulator;
  bool fired = false;
  auto handle = simulator.schedule_in(10.0, [&] { fired = true; });
  handle.cancel();
  simulator.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsProcessedCount) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.schedule_in(i, [] {});
  simulator.run_to_completion();
  EXPECT_EQ(simulator.events_processed(), 7u);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator simulator;
  bool fired = false;
  simulator.schedule_in(10.0, [&] { fired = true; });
  simulator.reset();
  simulator.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.now(), 0.0);
  EXPECT_EQ(simulator.events_processed(), 0u);
}

TEST(Simulator, RepeatingStopsWhenCallbackReturnsFalse) {
  Simulator simulator;
  std::vector<TimeMs> firings;
  simulator.schedule_repeating(10.0, 10.0, [&] {
    firings.push_back(simulator.now());
    return firings.size() < 3;  // stop after the third firing
  });
  simulator.run_to_completion();
  EXPECT_EQ(firings, (std::vector<TimeMs>{10.0, 20.0, 30.0}));
}

TEST(Simulator, StalePeriodicHandleAfterRecycleIsNoOp) {
  // A series that stopped on its own releases its pooled slot; the next
  // series reuses it. A cancel through the old handle must not stop the new
  // occupant (generation check).
  Simulator simulator;
  int first = 0;
  auto stale = simulator.schedule_repeating(0.0, 10.0, [&] {
    ++first;
    return false;  // one firing, then the slot is recycled
  });
  simulator.run_to_completion();
  EXPECT_EQ(first, 1);

  int second = 0;
  simulator.schedule_every(10.0, 10.0, [&] { ++second; });
  stale.cancel();  // old generation: must not touch the recycled slot
  simulator.run_until(45.0);
  EXPECT_EQ(second, 4);  // t = 10, 20, 30, 40 — still alive
}

TEST(Simulator, PeriodicCancelTwiceIsHarmless) {
  Simulator simulator;
  int fired = 0;
  auto handle = simulator.schedule_every(0.0, 10.0, [&] { ++fired; });
  simulator.run_until(15.0);
  handle.cancel();
  handle.cancel();
  auto copy = handle;
  copy.cancel();
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 2);  // t = 0, 10
}

TEST(Simulator, ResetInvalidatesPeriodicHandles) {
  Simulator simulator;
  int old_series = 0;
  auto handle = simulator.schedule_every(0.0, 10.0, [&] { ++old_series; });
  simulator.reset();

  int new_series = 0;
  simulator.schedule_every(0.0, 10.0, [&] { ++new_series; });
  handle.cancel();  // pre-reset generation: no-op on the recycled slot
  simulator.run_until(25.0);
  EXPECT_EQ(old_series, 0);
  EXPECT_EQ(new_series, 3);  // t = 0, 10, 20
}

TEST(Simulator, ManyConcurrentPeriodicSeries) {
  // More series than the initial pool: slots grow, series interleave, and
  // each fires on its own phase. Cancels mid-run release slots for reuse.
  Simulator simulator;
  constexpr int kSeries = 64;
  std::vector<int> counts(kSeries, 0);
  std::vector<Simulator::PeriodicHandle> handles;
  handles.reserve(kSeries);
  for (int i = 0; i < kSeries; ++i) {
    handles.push_back(
        simulator.schedule_every(0.5 * static_cast<TimeMs>(i), 100.0,
                                 [&counts, i] { ++counts[i]; }));
  }
  simulator.run_until(350.0);
  for (int i = 0; i < kSeries; ++i) EXPECT_EQ(counts[i], 4) << i;
  for (int i = 0; i < kSeries; i += 2) handles[i].cancel();
  simulator.run_until(550.0);
  for (int i = 0; i < kSeries; ++i) EXPECT_EQ(counts[i], i % 2 == 0 ? 4 : 6) << i;
}

TEST(Simulator, SameTimeEventsRunInSubmissionOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(5.0, [&] { order.push_back(1); });
  simulator.schedule_at(5.0, [&] { order.push_back(2); });
  simulator.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace paldia::sim
