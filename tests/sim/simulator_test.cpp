#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0.0);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator simulator;
  TimeMs fired_at = -1.0;
  simulator.schedule_in(100.0, [&] { fired_at = simulator.now(); });
  simulator.run_to_completion();
  EXPECT_EQ(fired_at, 100.0);
  EXPECT_EQ(simulator.now(), 100.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator simulator;
  simulator.schedule_in(50.0, [&] {
    simulator.schedule_in(-10.0, [&] { EXPECT_EQ(simulator.now(), 50.0); });
  });
  simulator.run_to_completion();
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(10.0, [&] { ++fired; });
  simulator.schedule_at(20.0, [&] { ++fired; });
  simulator.schedule_at(30.0, [&] { ++fired; });
  simulator.run_until(20.0);  // events exactly at the boundary run
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(simulator.now(), 20.0);
  simulator.run_to_completion();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator simulator;
  simulator.run_until(500.0);
  EXPECT_EQ(simulator.now(), 500.0);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator simulator;
  std::vector<TimeMs> firings;
  std::function<void()> chain = [&] {
    firings.push_back(simulator.now());
    if (firings.size() < 5) simulator.schedule_in(10.0, chain);
  };
  simulator.schedule_at(0.0, chain);
  simulator.run_to_completion();
  EXPECT_EQ(firings, (std::vector<TimeMs>{0.0, 10.0, 20.0, 30.0, 40.0}));
}

TEST(Simulator, PeriodicFiresAtPeriod) {
  Simulator simulator;
  std::vector<TimeMs> firings;
  simulator.schedule_every(100.0, 50.0, [&] { firings.push_back(simulator.now()); });
  simulator.run_until(300.0);
  EXPECT_EQ(firings, (std::vector<TimeMs>{100.0, 150.0, 200.0, 250.0, 300.0}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator simulator;
  int fired = 0;
  auto handle = simulator.schedule_every(0.0, 10.0, [&] { ++fired; });
  simulator.run_until(25.0);
  EXPECT_EQ(fired, 3);  // t = 0, 10, 20
  handle.cancel();
  simulator.run_until(100.0);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator simulator;
  bool fired = false;
  auto handle = simulator.schedule_in(10.0, [&] { fired = true; });
  handle.cancel();
  simulator.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, EventsProcessedCount) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.schedule_in(i, [] {});
  simulator.run_to_completion();
  EXPECT_EQ(simulator.events_processed(), 7u);
}

TEST(Simulator, ResetClearsEverything) {
  Simulator simulator;
  bool fired = false;
  simulator.schedule_in(10.0, [&] { fired = true; });
  simulator.reset();
  simulator.run_to_completion();
  EXPECT_FALSE(fired);
  EXPECT_EQ(simulator.now(), 0.0);
  EXPECT_EQ(simulator.events_processed(), 0u);
}

TEST(Simulator, SameTimeEventsRunInSubmissionOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(5.0, [&] { order.push_back(1); });
  simulator.schedule_at(5.0, [&] { order.push_back(2); });
  simulator.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace paldia::sim
