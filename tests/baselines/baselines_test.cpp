#include <gtest/gtest.h>

#include "src/baselines/infless_llama.hpp"
#include "src/baselines/molecule.hpp"
#include "src/baselines/offline_hybrid.hpp"
#include "src/baselines/oracle.hpp"
#include "src/trace/generators.hpp"

namespace paldia::baselines {
namespace {

core::DemandSnapshot demand(Rps rate, int backlog = 0,
                            models::ModelId model = models::ModelId::kResNet50) {
  core::DemandSnapshot snapshot;
  snapshot.model = model;
  snapshot.observed_rps = rate;
  snapshot.predicted_rps = rate;
  snapshot.smoothed_rps = rate;
  snapshot.backlog = backlog;
  return snapshot;
}

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : profile_(hw::Catalog::instance()) {}
  models::ProfileTable profile_;
};

TEST_F(BaselinesTest, InflessPerfAlwaysPicksV100) {
  InflessLlamaPolicy policy(models::Zoo::instance(), hw::Catalog::instance(),
                            profile_, Variant::kPerformance);
  for (Rps rate : {1.0, 50.0, 500.0}) {
    EXPECT_EQ(policy.select_hardware({demand(rate)}, hw::NodeType::kM4_xlarge, 0.0),
              hw::NodeType::kP3_2xlarge);
  }
  EXPECT_EQ(policy.name(), "INFless/Llama (P)");
}

TEST_F(BaselinesTest, InflessCostPicksCheapestSingleBatchCapable) {
  InflessLlamaPolicy policy(models::Zoo::instance(), hw::Catalog::instance(),
                            profile_, Variant::kCostEffective);
  // Low rate: a CPU node passes the single-batch test.
  const auto low = policy.select_hardware({demand(8.0)}, hw::NodeType::kM4_xlarge, 0.0);
  EXPECT_FALSE(hw::Catalog::instance().spec(low).is_gpu());
  // High rate: CPUs fail the drain test, the M60 passes the (isolated)
  // single-batch test despite the coming interference — the scheme's
  // defining blindness.
  const auto high =
      policy.select_hardware({demand(200.0)}, hw::NodeType::kM4_xlarge, 0.0);
  EXPECT_EQ(high, hw::NodeType::kG3s_xlarge);
  EXPECT_EQ(policy.name(), "INFless/Llama ($)");
}

TEST_F(BaselinesTest, InflessPlansAreAllSpatial) {
  InflessLlamaPolicy policy(models::Zoo::instance(), hw::Catalog::instance(),
                            profile_, Variant::kCostEffective);
  const auto plan = policy.plan_dispatch(demand(200.0, 500), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_EQ(plan.spatial_requests, 500);
  EXPECT_EQ(plan.temporal_requests, 0);
  EXPECT_FALSE(plan.use_cpu);
}

TEST_F(BaselinesTest, MoleculePlansAreAllTemporal) {
  MoleculePolicy policy(models::Zoo::instance(), hw::Catalog::instance(), profile_,
                        Variant::kCostEffective);
  const auto plan = policy.plan_dispatch(demand(200.0, 500), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_EQ(plan.spatial_requests, 0);
  EXPECT_EQ(plan.temporal_requests, 500);
  EXPECT_EQ(policy.name(), "Molecule (beta) ($)");
}

TEST_F(BaselinesTest, PinnedVariantsForMotivationStudy) {
  InflessLlamaPolicy mps_cost(models::Zoo::instance(), hw::Catalog::instance(),
                              profile_, Variant::kCostEffective,
                              hw::NodeType::kG3s_xlarge);
  EXPECT_EQ(mps_cost.name(), "MPS Only ($)");
  EXPECT_EQ(mps_cost.select_hardware({demand(500.0)}, hw::NodeType::kM4_xlarge, 0.0),
            hw::NodeType::kG3s_xlarge);

  MoleculePolicy ts_perf(models::Zoo::instance(), hw::Catalog::instance(), profile_,
                         Variant::kPerformance, hw::NodeType::kP3_2xlarge);
  EXPECT_EQ(ts_perf.name(), "Time Shared Only (P)");
  EXPECT_EQ(ts_perf.select_hardware({demand(1.0)}, hw::NodeType::kM4_xlarge, 0.0),
            hw::NodeType::kP3_2xlarge);
}

TEST_F(BaselinesTest, OfflineHybridUsesFixedFraction) {
  OfflineHybridPolicy policy(models::Zoo::instance(), hw::Catalog::instance(),
                             profile_, hw::NodeType::kG3s_xlarge, 0.75);
  EXPECT_EQ(policy.select_hardware({demand(100.0)}, hw::NodeType::kM4_xlarge, 0.0),
            hw::NodeType::kG3s_xlarge);
  const auto plan = policy.plan_dispatch(demand(100.0, 100), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_EQ(plan.spatial_requests, 75);
  EXPECT_EQ(plan.temporal_requests, 25);
}

TEST_F(BaselinesTest, OfflineHybridFractionClamped) {
  OfflineHybridPolicy policy(models::Zoo::instance(), hw::Catalog::instance(),
                             profile_, hw::NodeType::kG3s_xlarge, 1.7);
  EXPECT_DOUBLE_EQ(policy.spatial_fraction(), 1.0);
}

TEST_F(BaselinesTest, OracleUsesRevealedFutureRates) {
  OraclePolicy policy(models::Zoo::instance(), hw::Catalog::instance(), profile_);
  // A trace that is quiet now but surges within the procurement horizon.
  std::vector<std::uint32_t> counts(200, 0);
  for (std::size_t i = 30; i < 80; ++i) counts[i] = 30;  // 300 rps from t=3s
  trace::Trace surge("surge", 100.0, counts);
  policy.reveal_trace(models::ModelId::kResNet50, surge);

  // At t = 0 the observed rate is ~0, but the oracle sees the 300 rps wall
  // inside its horizon and provisions a GPU immediately.
  const auto chosen =
      policy.select_hardware({demand(0.5)}, hw::NodeType::kC6i_2xlarge, 0.0);
  EXPECT_TRUE(hw::Catalog::instance().spec(chosen).is_gpu());
}

TEST_F(BaselinesTest, OracleWithoutTraceActsOnSnapshot) {
  OraclePolicy policy(models::Zoo::instance(), hw::Catalog::instance(), profile_);
  const auto chosen =
      policy.select_hardware({demand(5.0)}, hw::NodeType::kC6i_2xlarge, 0.0);
  EXPECT_FALSE(hw::Catalog::instance().spec(chosen).is_gpu());
}

TEST_F(BaselinesTest, OraclePlansHybridSplits) {
  OraclePolicy policy(models::Zoo::instance(), hw::Catalog::instance(), profile_);
  const auto plan =
      policy.plan_dispatch(demand(300.0, 1200), hw::NodeType::kP3_2xlarge, 0.0);
  EXPECT_GT(plan.temporal_requests, 0);
  EXPECT_GT(plan.spatial_requests, 0);
}

TEST_F(BaselinesTest, DefaultFailoverSharedByAllSchemes) {
  MoleculePolicy policy(models::Zoo::instance(), hw::Catalog::instance(), profile_,
                        Variant::kPerformance);
  EXPECT_EQ(policy.on_node_failure(hw::NodeType::kP3_2xlarge),
            hw::NodeType::kG3s_xlarge);
}

}  // namespace
}  // namespace paldia::baselines
