#include "src/trace/trace_ops.hpp"

#include <gtest/gtest.h>

namespace paldia::trace {
namespace {

TEST(TraceOps, FromRateProfileMeanMatches) {
  Rng rng(1);
  std::vector<double> rates(10'000, 50.0);  // 50 rps for 1000 s
  const Trace trace = from_rate_profile("t", 100.0, rates, rng);
  EXPECT_NEAR(trace.mean_rps(), 50.0, 2.0);
}

TEST(TraceOps, ProfilePeak) {
  std::vector<double> rates(100, 10.0);
  for (std::size_t i = 40; i < 60; ++i) rates[i] = 100.0;
  EXPECT_NEAR(profile_peak_rps(rates, 100.0, 1000.0), 100.0, 1e-9);
}

TEST(TraceOps, ScaleRatesToPeak) {
  std::vector<double> rates{1.0, 2.0, 4.0, 2.0, 1.0};
  scale_rates_to_peak(rates, 1000.0, 100.0);  // 1 s epochs: peak = max epoch
  EXPECT_NEAR(profile_peak_rps(rates, 1000.0, 1000.0), 100.0, 1e-9);
  EXPECT_NEAR(rates[0], 25.0, 1e-9);  // shape preserved
}

TEST(TraceOps, ScaleRatesToMean) {
  std::vector<double> rates{10.0, 20.0, 30.0};
  scale_rates_to_mean(rates, 40.0);
  EXPECT_NEAR((rates[0] + rates[1] + rates[2]) / 3.0, 40.0, 1e-9);
  EXPECT_NEAR(rates[2] / rates[0], 3.0, 1e-9);  // shape preserved
}

TEST(TraceOps, ScaleRatesHandlesZero) {
  std::vector<double> rates{0.0, 0.0};
  scale_rates_to_peak(rates, 10.0, 100.0);  // no division by zero
  EXPECT_EQ(rates[0], 0.0);
  scale_rates_to_mean(rates, 10.0);
  EXPECT_EQ(rates[0], 0.0);
}

TEST(TraceOps, ScaleCountsUnbiased) {
  Rng rng(2);
  Trace trace("t", 100.0, std::vector<std::uint32_t>(10'000, 4));
  const Trace scaled = scale_counts(trace, 0.6, rng);
  EXPECT_NEAR(static_cast<double>(scaled.total_requests()),
              static_cast<double>(trace.total_requests()) * 0.6,
              trace.total_requests() * 0.02);
}

TEST(TraceOps, ScaleToPeakTrace) {
  Rng rng(3);
  std::vector<std::uint32_t> counts(1000, 2);
  for (std::size_t i = 400; i < 500; ++i) counts[i] = 40;
  Trace trace("t", 100.0, counts);
  const Trace scaled = scale_to_peak(trace, 100.0, rng);
  EXPECT_NEAR(scaled.peak_rps(), 100.0, 15.0);
}

TEST(TraceOps, ScaleToMeanTrace) {
  Rng rng(4);
  Trace trace("t", 100.0, std::vector<std::uint32_t>(1000, 5));
  const Trace scaled = scale_to_mean(trace, 10.0, rng);
  EXPECT_NEAR(scaled.mean_rps(), 10.0, 1.0);
}

TEST(TraceOps, BusiestWindowFindsTheSurge) {
  std::vector<std::uint32_t> counts(600, 1);
  for (std::size_t i = 300; i < 400; ++i) counts[i] = 50;
  Trace trace("t", 100.0, counts);
  const Window window = busiest_window(trace, 10'000.0);  // 10 s span
  EXPECT_GE(window.start_ms, 29'000.0);
  EXPECT_LE(window.end_ms, 41'000.0);
  EXPECT_NEAR(window.end_ms - window.start_ms, 10'000.0, 1e-9);
}

TEST(TraceOps, BusiestWindowOnEmptyTrace) {
  Trace trace("t", 100.0, {});
  const Window window = busiest_window(trace, 1000.0);
  EXPECT_EQ(window.start_ms, 0.0);
  EXPECT_EQ(window.end_ms, 0.0);
}

TEST(TraceOps, SlicePreservesCounts) {
  Trace trace("t", 100.0, {1, 2, 3, 4, 5, 6});
  const Trace sliced = slice(trace, 200.0, 500.0);
  EXPECT_EQ(sliced.counts(), (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(TraceOps, SliceClampsToBounds) {
  Trace trace("t", 100.0, {1, 2, 3});
  const Trace sliced = slice(trace, -100.0, 10'000.0);
  EXPECT_EQ(sliced.counts(), trace.counts());
}

}  // namespace
}  // namespace paldia::trace
