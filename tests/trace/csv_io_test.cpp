#include "src/trace/csv_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/generators.hpp"

namespace paldia::trace {
namespace {

TEST(TraceCsv, RoundTripPreservesEverything) {
  AzureOptions options;
  options.duration_ms = minutes(2);
  const Trace original = make_azure_trace(options);

  std::ostringstream out;
  write_csv(original, out);
  const Trace loaded = read_csv(out.str(), original.name());

  EXPECT_EQ(loaded.epoch_count(), original.epoch_count());
  EXPECT_DOUBLE_EQ(loaded.epoch_ms(), original.epoch_ms());
  EXPECT_EQ(loaded.counts(), original.counts());
  EXPECT_EQ(loaded.total_requests(), original.total_requests());
}

TEST(TraceCsv, ParsesMinimalInput) {
  const Trace trace = read_csv("epoch_ms,count\n0,3\n100,5\n200,0\n");
  EXPECT_EQ(trace.epoch_count(), 3u);
  EXPECT_DOUBLE_EQ(trace.epoch_ms(), 100.0);
  EXPECT_EQ(trace.count_at(1), 5u);
}

TEST(TraceCsv, InfersNonDefaultEpoch) {
  const Trace trace = read_csv("epoch_ms,count\n0,1\n250,1\n500,1\n");
  EXPECT_DOUBLE_EQ(trace.epoch_ms(), 250.0);
}

TEST(TraceCsv, IgnoresExtraColumns) {
  const Trace trace = read_csv("function,epoch_ms,count\nf1,0,2\nf1,100,4\n");
  EXPECT_EQ(trace.total_requests(), 6u);
}

TEST(TraceCsv, SingleRowDefaultsEpoch) {
  const Trace trace = read_csv("epoch_ms,count\n0,7\n");
  EXPECT_DOUBLE_EQ(trace.epoch_ms(), 100.0);
  EXPECT_EQ(trace.total_requests(), 7u);
}

TEST(TraceCsv, EmptyDataIsEmptyTrace) {
  const Trace trace = read_csv("epoch_ms,count\n");
  EXPECT_EQ(trace.epoch_count(), 0u);
}

TEST(TraceCsv, RejectsMissingColumns) {
  EXPECT_THROW(read_csv("time,n\n0,1\n"), std::runtime_error);
}

TEST(TraceCsv, RejectsNonNumericCells) {
  EXPECT_THROW(read_csv("epoch_ms,count\nzero,1\n"), std::runtime_error);
  EXPECT_THROW(read_csv("epoch_ms,count\n0,many\n"), std::runtime_error);
}

TEST(TraceCsv, RejectsNegativeCounts) {
  EXPECT_THROW(read_csv("epoch_ms,count\n0,-4\n"), std::runtime_error);
}

TEST(TraceCsv, RejectsInconsistentSpacing) {
  EXPECT_THROW(read_csv("epoch_ms,count\n0,1\n100,1\n350,1\n"),
               std::runtime_error);
}

TEST(TraceCsv, RejectsNonIncreasingTime) {
  EXPECT_THROW(read_csv("epoch_ms,count\n100,1\n100,1\n"), std::runtime_error);
}

TEST(TraceCsv, FileRoundTrip) {
  const Trace original("t", 100.0, {1, 2, 3});
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.csv";
  write_csv_file(original, path);
  const Trace loaded = read_csv_trace_file(path);
  EXPECT_EQ(loaded.counts(), original.counts());
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW(read_csv_trace_file("/nonexistent/trace.csv"), std::runtime_error);
}

}  // namespace
}  // namespace paldia::trace
