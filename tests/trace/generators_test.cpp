#include "src/trace/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/trace/trace_ops.hpp"

namespace paldia::trace {
namespace {

TEST(AzureTrace, MatchesPaperStatistics) {
  AzureOptions options;
  options.peak_rps = 225.0;
  const Trace trace = make_azure_trace(options);
  EXPECT_NEAR(trace.duration_ms(), minutes(25), 1.0);
  // Peak within sampling noise of the target.
  EXPECT_NEAR(trace.peak_rps(), 225.0, 30.0);
  // Large peak-to-mean ratio (the paper's sample is ~12.2x; Poisson noise
  // and the duty-cycle solve leave a band).
  const double ratio = trace.peak_rps() / trace.mean_rps();
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 25.0);
}

TEST(AzureTrace, DeterministicInSeed) {
  AzureOptions options;
  const Trace a = make_azure_trace(options);
  const Trace b = make_azure_trace(options);
  EXPECT_EQ(a.counts(), b.counts());
  options.seed = 999;
  const Trace c = make_azure_trace(options);
  EXPECT_NE(a.counts(), c.counts());
}

TEST(AzureTrace, HasQuietBaselineAndSurges) {
  const Trace trace = make_azure_trace(AzureOptions{});
  // Median 10 s window rate is far below the peak (sparse baseline).
  std::vector<double> window_rates;
  for (TimeMs t = 0; t + 10'000 <= trace.duration_ms(); t += 10'000) {
    window_rates.push_back(trace.rate_at(t, 10'000));
  }
  std::nth_element(window_rates.begin(),
                   window_rates.begin() + window_rates.size() / 2,
                   window_rates.end());
  const double median = window_rates[window_rates.size() / 2];
  EXPECT_LT(median * 4.0, trace.peak_rps());
}

TEST(WikiTrace, DiurnalShape) {
  WikiOptions options;
  const Trace trace = make_wiki_trace(options);
  EXPECT_NEAR(trace.duration_ms(), options.day_length_ms * options.days, 1.0);
  // The rate profile's peak is scaled to 170; Poisson sampling over many
  // plateau windows makes the observed max overshoot by a few sigma.
  EXPECT_NEAR(trace.peak_rps(), 170.0, 60.0);

  // Mid-day plateau of day 0 is much busier than the night trough.
  const double mid_day = trace.rate_at(options.day_length_ms * 0.5, 10'000);
  const double night = trace.rate_at(options.day_length_ms * 0.02, 10'000);
  EXPECT_GT(mid_day, night * 2.0);
}

TEST(WikiTrace, SustainedHighTrafficFraction) {
  // ~16 h of 24 h high traffic: a clear majority of the day sits well
  // above the overall mean (the plateau), the rest far below (the trough).
  WikiOptions options;
  const Trace trace = make_wiki_trace(options);
  int high = 0, total = 0;
  const double threshold = trace.mean_rps() * 1.15;
  for (TimeMs t = 0; t + 5'000 <= options.day_length_ms; t += 5'000) {
    ++total;
    if (trace.rate_at(t, 5'000) >= threshold) ++high;
  }
  EXPECT_GT(static_cast<double>(high) / total, 0.5);
  EXPECT_LT(static_cast<double>(high) / total, 0.85);
}

TEST(TwitterTrace, MeanAndErraticness) {
  TwitterOptions options;
  options.mean_rps = 275.0;
  const Trace trace = make_twitter_trace(options);
  EXPECT_NEAR(trace.duration_ms(), minutes(90), 1.0);
  EXPECT_NEAR(trace.mean_rps(), 275.0, 20.0);

  // Erratic: the coefficient of variation of 10 s window rates is large.
  std::vector<double> rates;
  for (TimeMs t = 0; t + 10'000 <= trace.duration_ms(); t += 10'000) {
    rates.push_back(trace.rate_at(t, 10'000));
  }
  double sum = 0, sq = 0;
  for (double r : rates) sum += r;
  const double mean = sum / rates.size();
  for (double r : rates) sq += (r - mean) * (r - mean);
  const double cv = std::sqrt(sq / rates.size()) / mean;
  EXPECT_GT(cv, 0.25);
}

TEST(PoissonTrace, ConstantMean) {
  PoissonOptions options;
  options.mean_rps = 700.0;
  options.duration_ms = minutes(2);
  const Trace trace = make_poisson_trace(options);
  EXPECT_NEAR(trace.mean_rps(), 700.0, 15.0);
  // Stationary: first and second half have similar rates.
  const double first = trace.rate_at(0.0, trace.duration_ms() / 2);
  const double second = trace.rate_at(trace.duration_ms() / 2, trace.duration_ms() / 2);
  EXPECT_NEAR(first, second, 40.0);
}

TEST(Generators, ArrivalsAreNotQuantisedClumps) {
  // Regression test: rates must be scaled before Poisson sampling. A
  // clumpy trace has most epochs empty at a non-trivial mean rate.
  AzureOptions options;
  options.peak_rps = 225.0;
  const Trace trace = make_azure_trace(options);
  std::size_t nonzero = 0;
  for (auto c : trace.counts()) nonzero += c > 0 ? 1 : 0;
  // Mean ~18 rps at 100 ms epochs -> ~1.8 per epoch; the zero fraction must
  // be modest, nowhere near the ~90% a clumped trace exhibits.
  EXPECT_GT(static_cast<double>(nonzero) / trace.epoch_count(), 0.5);
}

}  // namespace
}  // namespace paldia::trace
