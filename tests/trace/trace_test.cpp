#include "src/trace/trace.hpp"

#include <gtest/gtest.h>

namespace paldia::trace {
namespace {

TEST(Trace, BasicProperties) {
  Trace trace("t", 100.0, {1, 2, 3, 4});
  EXPECT_EQ(trace.name(), "t");
  EXPECT_EQ(trace.epoch_count(), 4u);
  EXPECT_EQ(trace.total_requests(), 10u);
  EXPECT_DOUBLE_EQ(trace.duration_ms(), 400.0);
}

TEST(Trace, MeanRps) {
  // 10 requests over 0.4 s = 25 rps.
  Trace trace("t", 100.0, {1, 2, 3, 4});
  EXPECT_NEAR(trace.mean_rps(), 25.0, 1e-9);
}

TEST(Trace, PeakRpsSlidingWindow) {
  // 20 epochs of 100 ms; one dense second in the middle.
  std::vector<std::uint32_t> counts(20, 1);
  for (std::size_t i = 5; i < 15; ++i) counts[i] = 10;
  Trace trace("t", 100.0, counts);
  EXPECT_NEAR(trace.peak_rps(1000.0), 100.0, 1e-9);
}

TEST(Trace, PeakShorterThanWindow) {
  Trace trace("t", 100.0, {5, 5});
  // Window larger than trace: rate over the actual span.
  EXPECT_NEAR(trace.peak_rps(1000.0), 10.0 / 0.2 * 0.2 / 0.2, 50.0);
  EXPECT_GT(trace.peak_rps(1000.0), 0.0);
}

TEST(Trace, RateAtWindow) {
  Trace trace("t", 100.0, {0, 0, 10, 10, 0, 0});
  EXPECT_NEAR(trace.rate_at(200.0, 200.0), 100.0, 1e-9);
  EXPECT_NEAR(trace.rate_at(400.0, 200.0), 0.0, 1e-9);
}

TEST(Trace, RateAtPastEnd) {
  Trace trace("t", 100.0, {5});
  EXPECT_EQ(trace.rate_at(1000.0), 0.0);
}

TEST(Trace, InvalidEpochThrows) {
  EXPECT_THROW(Trace("t", 0.0, {1}), std::invalid_argument);
  EXPECT_THROW(Trace("t", -5.0, {1}), std::invalid_argument);
}

TEST(Trace, EmptyTrace) {
  Trace trace("t", 100.0, {});
  EXPECT_EQ(trace.total_requests(), 0u);
  EXPECT_EQ(trace.mean_rps(), 0.0);
  EXPECT_EQ(trace.peak_rps(), 0.0);
}

}  // namespace
}  // namespace paldia::trace
