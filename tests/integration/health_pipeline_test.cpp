// End-to-end contract of the online SLO health engine: with injected node
// failures every sustained violation burst raises a firing -> resolved
// incident whose blame hint is a cause attribution actually charged, a
// compliant run raises zero alerts, the alert stream is byte-identical
// across worker-thread and shard counts, and the inline report's "health"
// section equals the `paldia-analyze --alerts` reconstruction byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/runner.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/health.hpp"
#include "src/obs/report.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

Scenario health_scenario(bool failures) {
  Scenario scenario;
  scenario.name = "health";
  trace::PoissonOptions options;
  options.mean_rps = 60.0;
  options.duration_ms = seconds(30);
  scenario.workloads.push_back(WorkloadSpec{
      models::ModelId::kResNet50, trace::make_poisson_trace(options)});
  scenario.repetitions = 2;
  if (failures) {
    scenario.failures = cluster::FailureInjectorConfig{
        .period_ms = seconds(12), .downtime_ms = seconds(4),
        .first_failure_ms = seconds(6)};
  }
  return scenario;
}

/// Burn windows sized for the 30 s scenario: the failure bursts last ~4 s,
/// so a 2 s fast / 8 s slow pair sees them while monitor ticks (500 ms)
/// give each window enough evaluations. slo_target 0.99 puts the breach
/// point at a 14.4% violation fraction — far above cold-start stragglers,
/// far below a downed node.
SchemeFactoryOptions health_options(int shards) {
  SchemeFactoryOptions options;
  options.shards = shards;
  options.slo_target = 0.99;
  options.burn_fast_ms = 2000.0;
  options.burn_slow_ms = 8000.0;
  return options;
}

struct HealthRun {
  std::string alerts_jsonl;
  std::string inline_report_json;
  obs::HealthReport inline_health;
  RunResult result;
  std::size_t reps = 0;
};

HealthRun run_health(bool failures, int shards, ThreadPool* pool,
                     SchemeId scheme = SchemeId::kPaldia) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), pool,
                health_options(shards));
  const Scenario scenario = health_scenario(failures);
  obs::RunTrace trace;
  trace.capture_events = false;  // health needs no event buffers
  trace.collect_health = true;

  HealthRun run;
  run.result = runner.run(scenario, scheme, trace);
  run.reps = trace.healths.size();

  const std::string label = scenario.name + " / " + scheme_name(scheme);
  std::ostringstream alerts;
  obs::AlertWriter writer(alerts, obs::ExportFormat::kJsonl);
  writer.write(trace, label);
  run.alerts_jsonl = alerts.str();

  run.inline_health = obs::summarize_health(trace);
  obs::AnalysisReport report;
  report.label = label;
  report.reps = static_cast<int>(trace.healths.size());
  report.health = run.inline_health;
  std::ostringstream json;
  obs::write_report_json(json, {report});
  run.inline_report_json = json.str();
  return run;
}

TEST(HealthPipeline, InjectedFailuresRaiseResolvedIncidentsWithSoundBlame) {
  ThreadPool pool(8);
  const HealthRun run = run_health(/*failures=*/true, /*shards=*/1, &pool);

  ASSERT_EQ(run.reps, 2u);
  ASSERT_TRUE(run.inline_health.enabled);
  EXPECT_GT(run.inline_health.violations, 0u);
  ASSERT_FALSE(run.inline_health.alerts.empty())
      << "two 4 s failure bursts must trip the burn detector";

  // The detection actually detected: the first alert fired after the first
  // violation, within the same run (MTTD is defined and sane).
  EXPECT_GE(run.inline_health.first_violation_ms, 0.0);
  EXPECT_GE(run.inline_health.mttd_ms, 0.0);
  EXPECT_LT(run.inline_health.mttd_ms, 30'000.0);

  // Causes the attribution engine actually charged in this run.
  std::vector<std::string> charged;
  for (int i = 0; i < telemetry::kViolationCauseCount; ++i) {
    if (run.result.combined.violations_by_cause[static_cast<std::size_t>(i)] >
        0.0) {
      charged.push_back(std::string(telemetry::violation_cause_name(
          static_cast<telemetry::ViolationCause>(i))));
    }
  }
  ASSERT_FALSE(charged.empty());

  for (const obs::HealthAlert& alert : run.inline_health.alerts) {
    // Lifecycle invariants: open <= fire <= resolve, and an incident that
    // resolved mid-run did so after real clear evaluations.
    EXPECT_LE(alert.open_ms, alert.fire_ms);
    EXPECT_LE(alert.fire_ms, alert.resolve_ms);
    EXPECT_GT(alert.ticks_breached, 0u);
    EXPECT_GT(alert.peak_severity, 0.0);
    // Burn alerts carry real violations in-window (not false positives) and
    // blame a cause that attribution actually charged.
    if (alert.detector == "burn_rate") {
      EXPECT_GT(alert.violations, 0u) << alert.detector << " " << alert.model;
      EXPECT_NE(std::find(charged.begin(), charged.end(), alert.blame),
                charged.end())
          << "blame '" << alert.blame << "' was never charged by attribution";
    }
  }
}

TEST(HealthPipeline, CompliantRunRaisesZeroAlerts) {
  // Paldia's cold ramp off the CPU start node is itself a (real) incident,
  // so the compliant reference pins the V100 from t = 0: no hardware
  // switch, no sustained burn, nothing for the detectors to find.
  ThreadPool pool(8);
  const HealthRun run = run_health(/*failures=*/false, /*shards=*/1, &pool,
                                   SchemeId::kMpsOnlyPerf);
  ASSERT_TRUE(run.inline_health.enabled);
  EXPECT_TRUE(run.inline_health.alerts.empty())
      << run.inline_health.alerts.size()
      << " unexpected alerts; stream:\n" << run.alerts_jsonl;
  EXPECT_DOUBLE_EQ(run.inline_health.mttd_ms, -1.0);
  EXPECT_EQ(run.inline_health.false_positives, 0u);
}

TEST(HealthPipeline, AlertStreamBitIdenticalAcrossThreadsAndShards) {
  ThreadPool pool(8);
  const HealthRun serial = run_health(true, /*shards=*/1, nullptr);
  ASSERT_FALSE(serial.alerts_jsonl.empty());

  const HealthRun pooled = run_health(true, /*shards=*/1, &pool);
  EXPECT_EQ(serial.alerts_jsonl, pooled.alerts_jsonl);
  EXPECT_EQ(serial.inline_report_json, pooled.inline_report_json);

  const HealthRun sharded = run_health(true, /*shards=*/4, &pool);
  EXPECT_EQ(serial.alerts_jsonl, sharded.alerts_jsonl);
  EXPECT_EQ(serial.inline_report_json, sharded.inline_report_json);
}

TEST(HealthPipeline, OfflineAlertAnalysisMatchesInlineByteForByte) {
  ThreadPool pool(8);
  const HealthRun run = run_health(true, 1, &pool);

  // Same path `paldia-analyze --alerts` takes: parse the stream, rebuild
  // the health section, serialize the report.
  std::vector<obs::AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(obs::analyze_alert_stream(run.alerts_jsonl, &reports, &error))
      << error;
  ASSERT_EQ(reports.size(), 1u);
  std::ostringstream offline;
  obs::write_report_json(offline, reports);
  EXPECT_EQ(run.inline_report_json, offline.str());
}

TEST(HealthPipeline, ChromeTraceGainsAHealthLane) {
  ThreadPool pool(4);
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                health_options(1));
  const Scenario scenario = health_scenario(true);
  obs::RunTrace trace;
  trace.collect_health = true;  // events on too: the lane joins the pids
  const RunResult result = runner.run(scenario, SchemeId::kPaldia, trace);
  (void)result;
  std::ostringstream chrome;
  obs::write_chrome_trace(chrome, trace, scenario.name);
  EXPECT_NE(chrome.str().find("\"health\""), std::string::npos);
  EXPECT_NE(chrome.str().find("burn_rate"), std::string::npos);
}

}  // namespace
}  // namespace paldia::exp
