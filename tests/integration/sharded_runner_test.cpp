// End-to-end determinism contract of the sharded drain: a full Runner
// workload — failure injector on, so fail-over, requeue and procurement all
// cross shards — must produce byte-identical exports (Chrome trace, metrics
// rows, decision log, analysis report) for --shards=1, 2 and 4, with and
// without the executor draining extraction in parallel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/runner.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

Scenario failure_scenario() {
  Scenario scenario;
  scenario.name = "sharded";
  trace::PoissonOptions options;
  options.mean_rps = 60.0;
  options.duration_ms = seconds(30);
  scenario.workloads.push_back(WorkloadSpec{
      models::ModelId::kResNet50, trace::make_poisson_trace(options)});
  scenario.repetitions = 2;
  scenario.failures = cluster::FailureInjectorConfig{
      .period_ms = seconds(12), .downtime_ms = seconds(4),
      .first_failure_ms = seconds(6)};
  return scenario;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every export surface of one (scheme, shards) sweep, as raw bytes.
struct Exports {
  std::string chrome_trace;
  std::string metrics;
  std::string decisions;
  std::string report;
};

Exports run_exports(int shards, ThreadPool* pool, SchemeId scheme,
                    const std::string& tag) {
  SchemeFactoryOptions options;
  options.shards = shards;
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), pool,
                options);
  const Scenario scenario = failure_scenario();

  obs::RunTrace trace;
  const RunResult result = runner.run(scenario, scheme, trace);

  Exports exports;
  std::ostringstream chrome;
  obs::write_chrome_trace(chrome, trace, scenario.name);
  exports.chrome_trace = chrome.str();

  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "sharded_metrics_" + tag + ".jsonl";
  const std::string decisions_path = dir + "sharded_decisions_" + tag + ".jsonl";
  {
    obs::MetricsWriter metrics(metrics_path);
    EXPECT_TRUE(metrics.ok()) << metrics.error();
    metrics.write(result.combined, "sharded-test");
    obs::DecisionLogWriter decisions(decisions_path);
    EXPECT_TRUE(decisions.ok()) << decisions.error();
    decisions.write(trace, scheme_name(scheme), scenario.name);
  }
  exports.metrics = slurp(metrics_path);
  exports.decisions = slurp(decisions_path);
  std::remove(metrics_path.c_str());
  std::remove(decisions_path.c_str());

  std::ostringstream report;
  obs::write_report_json(
      report, {obs::analyze_with_zoo(
                  obs::extract_run_data(trace, scenario.name))});
  exports.report = report.str();
  return exports;
}

TEST(Runner, ShardedVsSerialBitIdentical) {
  ThreadPool pool(8);
  for (const SchemeId scheme : {SchemeId::kPaldia, SchemeId::kOracle}) {
    const Exports serial = run_exports(1, &pool, scheme, "s1");
    ASSERT_FALSE(serial.chrome_trace.empty());
    ASSERT_FALSE(serial.metrics.empty());
    ASSERT_FALSE(serial.decisions.empty());
    for (const int shards : {2, 4}) {
      const Exports sharded =
          run_exports(shards, &pool, scheme, "s" + std::to_string(shards));
      EXPECT_EQ(serial.chrome_trace, sharded.chrome_trace)
          << scheme_name(scheme) << " shards=" << shards;
      EXPECT_EQ(serial.metrics, sharded.metrics)
          << scheme_name(scheme) << " shards=" << shards;
      EXPECT_EQ(serial.decisions, sharded.decisions)
          << scheme_name(scheme) << " shards=" << shards;
      EXPECT_EQ(serial.report, sharded.report)
          << scheme_name(scheme) << " shards=" << shards;
    }
  }
}

TEST(Runner, ShardedBitIdenticalWithoutExecutor) {
  // The executor only parallelizes extraction; draining inline must not
  // change a byte either.
  ThreadPool pool(4);
  const Exports pooled = run_exports(4, &pool, SchemeId::kPaldia, "pool");
  const Exports inline_drain =
      run_exports(4, nullptr, SchemeId::kPaldia, "inline");
  EXPECT_EQ(pooled.chrome_trace, inline_drain.chrome_trace);
  EXPECT_EQ(pooled.metrics, inline_drain.metrics);
  EXPECT_EQ(pooled.decisions, inline_drain.decisions);
  EXPECT_EQ(pooled.report, inline_drain.report);
}

}  // namespace
}  // namespace paldia::exp
