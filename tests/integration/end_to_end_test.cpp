// End-to-end shape checks: short versions of the paper's headline claims.
// These assert *orderings* (who beats whom), not absolute numbers — the
// figure benches reproduce the full-sized experiments.
#include <gtest/gtest.h>

#include "src/exp/runner.hpp"
#include "src/exp/scenario.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  EndToEnd() : runner_(models::Zoo::instance(), hw::Catalog::instance()) {}

  RunResult run(const Scenario& scenario, SchemeId scheme) {
    Scenario one_rep = scenario;
    one_rep.repetitions = 1;
    return runner_.run(one_rep, scheme);
  }

  Runner runner_;
};

TEST_F(EndToEnd, PaldiaBeatsCostBaselinesOnSloUnderBurstyTraffic) {
  const auto scenario = azure_scenario(models::ModelId::kResNet50, 1);
  const auto paldia = run(scenario, SchemeId::kPaldia);
  const auto infless = run(scenario, SchemeId::kInflessLlamaCost);
  const auto molecule = run(scenario, SchemeId::kMoleculeCost);

  EXPECT_GT(paldia.combined.slo_compliance, infless.combined.slo_compliance);
  EXPECT_GT(paldia.combined.slo_compliance, molecule.combined.slo_compliance);
  EXPECT_GT(paldia.combined.slo_compliance, 0.94);
}

TEST_F(EndToEnd, PaldiaFarCheaperThanPerformanceSchemes) {
  const auto scenario = azure_scenario(models::ModelId::kResNet50, 1);
  const auto paldia = run(scenario, SchemeId::kPaldia);
  const auto perf = run(scenario, SchemeId::kInflessLlamaPerf);

  EXPECT_LT(paldia.combined.cost, perf.combined.cost * 0.55);
  // And within a small compliance gap of the always-V100 scheme.
  EXPECT_GT(paldia.combined.slo_compliance, perf.combined.slo_compliance - 0.06);
}

TEST_F(EndToEnd, PerformanceSchemesAreNearPerfect) {
  const auto scenario = azure_scenario(models::ModelId::kDenseNet121, 1);
  for (SchemeId scheme : {SchemeId::kInflessLlamaPerf, SchemeId::kMoleculePerf}) {
    const auto result = run(scenario, scheme);
    EXPECT_GT(result.combined.slo_compliance, 0.985) << scheme_name(scheme);
    EXPECT_LT(result.combined.p99_latency_ms, 250.0) << scheme_name(scheme);
  }
}

TEST_F(EndToEnd, ResourceExhaustionOrdering) {
  // Fig. 13a in miniature: Poisson traffic that saturates even the V100
  // (the simulated V100 serves GoogleNet at ~850 rps time-shared; 800 rps
  // drives the regime the paper reaches at ~700 on real hardware).
  Scenario scenario = poisson_scenario(models::ModelId::kGoogleNet, 800.0, 1);
  scenario.workloads[0].trace =
      trace::make_poisson_trace({minutes(3), 100.0, 800.0, 4});
  scenario.framework.initial_node = hw::NodeType::kP3_2xlarge;
  const auto paldia = run(scenario, SchemeId::kPaldia);
  const auto infless = run(scenario, SchemeId::kInflessLlamaPerf);
  const auto molecule = run(scenario, SchemeId::kMoleculePerf);

  // Hybrid > time-shared > all-spatial under saturation.
  EXPECT_GT(paldia.combined.slo_compliance, molecule.combined.slo_compliance);
  EXPECT_GT(molecule.combined.slo_compliance, infless.combined.slo_compliance);
}

TEST_F(EndToEnd, OracleAtLeastAsGoodAndNoCostlier) {
  const auto scenario = azure_scenario(models::ModelId::kSeNet18, 1);
  const auto paldia = run(scenario, SchemeId::kPaldia);
  const auto oracle = run(scenario, SchemeId::kOracle);

  EXPECT_GE(oracle.combined.slo_compliance, paldia.combined.slo_compliance - 0.01);
  EXPECT_LE(oracle.combined.cost, paldia.combined.cost * 1.05);
}

TEST_F(EndToEnd, LanguageModelsCostMoreThanVision) {
  const auto vision = run(azure_scenario(models::ModelId::kResNet50, 1),
                          SchemeId::kPaldia);
  const auto llm = run(llm_scenario(models::ModelId::kBert, 1), SchemeId::kPaldia);
  // LLMs need pricier hardware per request served (Fig. 10's 86% increase);
  // compare cost per 1k requests.
  const double vision_unit = vision.combined.cost / vision.combined.requests;
  const double llm_unit = llm.combined.cost / llm.combined.requests;
  EXPECT_GT(llm_unit, vision_unit * 3.0);
}

TEST_F(EndToEnd, GoodputDuringSurges) {
  const auto scenario = azure_scenario(models::ModelId::kDenseNet121, 1);
  const auto paldia = run(scenario, SchemeId::kPaldia);
  const auto infless = run(scenario, SchemeId::kInflessLlamaCost);
  ASSERT_GT(paldia.combined.offered_rps, 0.0);
  const double paldia_ratio =
      paldia.combined.goodput_rps / paldia.combined.offered_rps;
  const double infless_ratio =
      infless.combined.goodput_rps / infless.combined.offered_rps;
  EXPECT_GT(paldia_ratio, infless_ratio);
  EXPECT_GT(paldia_ratio, 0.80);
}

TEST_F(EndToEnd, OfflineSweepFindsInteriorOrBoundaryFraction) {
  Scenario scenario = poisson_scenario(models::ModelId::kDenseNet121, 160.0, 1);
  scenario.workloads[0].trace =
      trace::make_poisson_trace({seconds(60), 100.0, 160.0, 9});
  const double fraction = sweep_offline_spatial_fraction(scenario, 4);
  EXPECT_GE(fraction, 0.0);
  EXPECT_LE(fraction, 1.0);
}

}  // namespace
}  // namespace paldia::exp
