// Fleet-scale determinism contract: a multi-endpoint FleetSim run — E
// gateways over a sliced generated catalog, one shared sharded simulator —
// must produce byte-identical exports (Chrome trace, metrics rows, decision
// log, analysis report) for --shards=1 and 4, with and without the thread
// pool parallelizing per-shard extraction. This is the test-suite twin of
// the CI fleet smoke (bench/fleet_sim byte-compare).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/exp/fleet_sim.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

constexpr int kEndpoints = 4;

Scenario fleet_scenario() {
  Scenario scenario;
  scenario.name = "fleet-sim";
  scenario.base_seed = 21;
  trace::PoissonOptions options;
  options.mean_rps = 120.0;
  options.duration_ms = seconds(20);
  options.seed = 5;
  scenario.workloads.push_back(WorkloadSpec{
      models::ModelId::kResNet50, trace::make_poisson_trace(options)});
  options.mean_rps = 40.0;
  options.seed = 6;
  scenario.workloads.push_back(WorkloadSpec{
      models::ModelId::kMobileNet, trace::make_poisson_trace(options)});
  return scenario;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Exports {
  std::string chrome_trace;
  std::string metrics;
  std::string decisions;
  std::string report;
  std::uint64_t total_requests = 0;
  std::uint64_t unserved = 0;
};

Exports run_exports(const hw::Catalog& catalog, int shards, ThreadPool* pool,
                    const std::string& tag) {
  SchemeFactoryOptions options;
  options.shards = shards;
  FleetSim sim(models::Zoo::instance(), catalog, pool, options);
  const Scenario scenario = fleet_scenario();

  obs::RunTrace trace;
  const FleetSimResult result =
      sim.run(scenario, SchemeId::kPaldia, kEndpoints, &trace);
  EXPECT_EQ(static_cast<std::size_t>(result.endpoints), trace.reps.size());

  Exports exports;
  exports.total_requests = result.total_requests;
  exports.unserved = result.unserved;

  std::ostringstream chrome;
  obs::write_chrome_trace(chrome, trace, scenario.name);
  exports.chrome_trace = chrome.str();

  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "fleet_metrics_" + tag + ".jsonl";
  const std::string decisions_path = dir + "fleet_decisions_" + tag + ".jsonl";
  {
    obs::MetricsWriter metrics(metrics_path);
    EXPECT_TRUE(metrics.ok()) << metrics.error();
    for (const RunResult& endpoint : result.per_endpoint) {
      metrics.write(endpoint.combined, "fleet-test");
    }
    metrics.write(result.combined, "fleet-test");
    obs::DecisionLogWriter decisions(decisions_path);
    EXPECT_TRUE(decisions.ok()) << decisions.error();
    decisions.write(trace, scheme_name(SchemeId::kPaldia), scenario.name);
  }
  exports.metrics = slurp(metrics_path);
  exports.decisions = slurp(decisions_path);
  std::remove(metrics_path.c_str());
  std::remove(decisions_path.c_str());

  std::ostringstream report;
  obs::write_report_json(
      report,
      {obs::analyze_with_zoo(obs::extract_run_data(trace, scenario.name))});
  exports.report = report.str();
  return exports;
}

TEST(FleetSim, ShardedVsSerialBitIdentical) {
  const hw::Catalog catalog = hw::generate_catalog({.node_count = 16, .seed = 3});
  ThreadPool pool(4);
  const Exports serial = run_exports(catalog, 1, nullptr, "s1");
  ASSERT_FALSE(serial.chrome_trace.empty());
  ASSERT_FALSE(serial.metrics.empty());
  ASSERT_GT(serial.total_requests, 0u);
  // Sharded with pooled extraction, and sharded draining inline: neither
  // the shard count nor the extraction threads may change a byte.
  for (const bool pooled : {true, false}) {
    const Exports sharded = run_exports(catalog, 4, pooled ? &pool : nullptr,
                                        pooled ? "s4pool" : "s4");
    EXPECT_EQ(serial.chrome_trace, sharded.chrome_trace) << "pooled=" << pooled;
    EXPECT_EQ(serial.metrics, sharded.metrics) << "pooled=" << pooled;
    EXPECT_EQ(serial.decisions, sharded.decisions) << "pooled=" << pooled;
    EXPECT_EQ(serial.report, sharded.report) << "pooled=" << pooled;
    EXPECT_EQ(serial.total_requests, sharded.total_requests);
    EXPECT_EQ(serial.unserved, sharded.unserved);
  }
}

TEST(FleetSim, RequestIdsUniqueAcrossEndpointTraces) {
  // Every traced request id carries its endpoint tag: ids observed by
  // different endpoints' tracers must never alias.
  const hw::Catalog catalog = hw::generate_catalog({.node_count = 16, .seed = 3});
  SchemeFactoryOptions options;
  options.shards = 4;
  FleetSim sim(models::Zoo::instance(), catalog, nullptr, options);
  obs::RunTrace trace;
  const FleetSimResult result =
      sim.run(fleet_scenario(), SchemeId::kPaldia, kEndpoints, &trace);
  ASSERT_EQ(trace.reps.size(), static_cast<std::size_t>(kEndpoints));
  std::size_t traced = 0;
  for (int e = 0; e < kEndpoints; ++e) {
    for (const auto& event : trace.reps[static_cast<std::size_t>(e)]->events()) {
      if (event.type != obs::TraceEvent::Type::kRequest) continue;
      EXPECT_EQ(cluster::IdAllocator::endpoint_of(event.id), e);
      ++traced;
    }
  }
  EXPECT_GT(traced, 0u);
  EXPECT_LE(traced, result.total_requests);
}

}  // namespace
}  // namespace paldia::exp
