#include "src/exp/runner.hpp"

#include <gtest/gtest.h>

#include "src/exp/summary.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

Scenario short_scenario(models::ModelId model, Rps rate, DurationMs duration,
                        int repetitions = 1) {
  Scenario scenario;
  scenario.name = "short";
  trace::PoissonOptions options;
  options.mean_rps = rate;
  options.duration_ms = duration;
  scenario.workloads.push_back(
      WorkloadSpec{model, trace::make_poisson_trace(options)});
  scenario.repetitions = repetitions;
  return scenario;
}

TEST(Runner, ProducesCompleteMetrics) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  const auto scenario = short_scenario(models::ModelId::kResNet50, 30.0, seconds(40));
  const auto result = runner.run_once(scenario, SchemeId::kPaldia, 42);
  ASSERT_EQ(result.per_workload.size(), 1u);
  const auto& metrics = result.combined;
  EXPECT_EQ(metrics.scheme, "Paldia");
  EXPECT_GT(metrics.requests, 0u);
  EXPECT_GT(metrics.slo_compliance, 0.5);
  EXPECT_GT(metrics.cost, 0.0);
  EXPECT_GT(metrics.average_power, 0.0);
  EXPECT_GT(metrics.p99_latency_ms, 0.0);
}

TEST(Runner, DeterministicForSameSeed) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  const auto scenario = short_scenario(models::ModelId::kSeNet18, 40.0, seconds(30));
  const auto a = runner.run_once(scenario, SchemeId::kMoleculeCost, 7);
  const auto b = runner.run_once(scenario, SchemeId::kMoleculeCost, 7);
  EXPECT_EQ(a.combined.slo_compliance, b.combined.slo_compliance);
  EXPECT_EQ(a.combined.p99_latency_ms, b.combined.p99_latency_ms);
  EXPECT_EQ(a.combined.cost, b.combined.cost);
}

TEST(Runner, PerformanceVariantsUseV100AndCostMore) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  const auto scenario = short_scenario(models::ModelId::kResNet50, 30.0, seconds(40));
  const auto perf = runner.run_once(scenario, SchemeId::kInflessLlamaPerf, 42);
  const auto cost = runner.run_once(scenario, SchemeId::kInflessLlamaCost, 42);
  EXPECT_GT(perf.combined.cost, cost.combined.cost * 2.0);
  EXPECT_GE(perf.combined.slo_compliance, 0.99);
}

TEST(Runner, KeepCdfPopulatesSeries) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  const auto scenario = short_scenario(models::ModelId::kResNet50, 20.0, seconds(20));
  const auto result = runner.run_once(scenario, SchemeId::kPaldia, 1, true);
  EXPECT_FALSE(result.per_workload[0].latency_cdf.empty());
}

TEST(Runner, AggregationAcrossRepetitions) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  auto scenario = short_scenario(models::ModelId::kResNet50, 25.0, seconds(20), 3);
  const auto result = runner.run(scenario, SchemeId::kPaldia);
  EXPECT_GT(result.combined.slo_compliance, 0.5);
  EXPECT_LE(result.combined.slo_compliance, 1.0);
}

TEST(Runner, ParallelRepetitionsBitIdenticalToSerial) {
  // The pool must only change wall-clock time: each repetition derives its
  // seed independently of execution order and lands in a fixed slot, so the
  // aggregated metrics are bit-for-bit those of the serial runner.
  ThreadPool pool(4);
  Runner serial(models::Zoo::instance(), hw::Catalog::instance());
  Runner parallel(models::Zoo::instance(), hw::Catalog::instance(), &pool);
  auto scenario = short_scenario(models::ModelId::kResNet50, 25.0, seconds(20), 8);
  for (SchemeId scheme : {SchemeId::kPaldia, SchemeId::kMoleculeCost}) {
    const auto a = serial.run(scenario, scheme);
    const auto b = parallel.run(scenario, scheme);
    EXPECT_EQ(a.combined.requests, b.combined.requests);
    EXPECT_EQ(a.combined.slo_compliance, b.combined.slo_compliance);
    EXPECT_EQ(a.combined.p50_latency_ms, b.combined.p50_latency_ms);
    EXPECT_EQ(a.combined.p95_latency_ms, b.combined.p95_latency_ms);
    EXPECT_EQ(a.combined.p99_latency_ms, b.combined.p99_latency_ms);
    EXPECT_EQ(a.combined.cost, b.combined.cost);
    EXPECT_EQ(a.combined.average_power, b.combined.average_power);
    ASSERT_EQ(a.per_workload.size(), b.per_workload.size());
    for (std::size_t w = 0; w < a.per_workload.size(); ++w) {
      EXPECT_EQ(a.per_workload[w].p99_latency_ms, b.per_workload[w].p99_latency_ms);
      EXPECT_EQ(a.per_workload[w].slo_compliance, b.per_workload[w].slo_compliance);
    }
  }
}

TEST(Runner, ParallelKeepCdfStillPopulatesFirstRep) {
  ThreadPool pool(4);
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), &pool);
  auto scenario = short_scenario(models::ModelId::kResNet50, 20.0, seconds(20), 4);
  const auto result = runner.run(scenario, SchemeId::kPaldia, /*keep_cdf=*/true);
  ASSERT_EQ(result.per_workload.size(), 1u);
  EXPECT_FALSE(result.per_workload[0].latency_cdf.empty());
}

TEST(Runner, CachedVsUncachedBitIdentical) {
  // The TmaxCache is exact memoization of deterministic math, so every
  // metric — not just the headline numbers — must be bit-identical with the
  // cache bypassed, while the cache-mode run actually hits. Runs under the
  // pool to exercise the mutex-guarded map from concurrent sweeps.
  ThreadPool pool(8);
  SchemeFactoryOptions cached_options;
  SchemeFactoryOptions bypass_options;
  bypass_options.tmax_cache = false;
  Runner cached(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                cached_options);
  Runner bypass(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                bypass_options);
  auto scenario = short_scenario(models::ModelId::kResNet50, 60.0, seconds(30), 2);
  for (SchemeId scheme : {SchemeId::kPaldia, SchemeId::kOracle}) {
    const auto a = cached.run(scenario, scheme);
    const auto b = bypass.run(scenario, scheme);
    EXPECT_EQ(a.combined.requests, b.combined.requests) << scheme_name(scheme);
    EXPECT_EQ(a.combined.slo_compliance, b.combined.slo_compliance);
    EXPECT_EQ(a.combined.mean_latency_ms, b.combined.mean_latency_ms);
    EXPECT_EQ(a.combined.p50_latency_ms, b.combined.p50_latency_ms);
    EXPECT_EQ(a.combined.p95_latency_ms, b.combined.p95_latency_ms);
    EXPECT_EQ(a.combined.p99_latency_ms, b.combined.p99_latency_ms);
    EXPECT_EQ(a.combined.cost, b.combined.cost);
    EXPECT_EQ(a.combined.average_power, b.combined.average_power);
    EXPECT_EQ(a.combined.cold_starts, b.combined.cold_starts);
    EXPECT_EQ(a.combined.slo_violations, b.combined.slo_violations);
    // The counters are identical too (bypass counts without reusing), and
    // a real workload revisits operating points, so hits must be nonzero.
    EXPECT_EQ(a.combined.tmax_cache_hits, b.combined.tmax_cache_hits);
    EXPECT_EQ(a.combined.tmax_cache_misses, b.combined.tmax_cache_misses);
    EXPECT_EQ(a.combined.tmax_cache_hit_rate, b.combined.tmax_cache_hit_rate);
    EXPECT_GT(a.combined.tmax_cache_hits, 0.0) << scheme_name(scheme);
    EXPECT_GT(a.combined.tmax_cache_misses, 0.0) << scheme_name(scheme);
  }
}

TEST(Runner, PooledVsBypassBitIdentical) {
  // The request arena only changes where request buffers live, never what
  // they contain, so every metric must be bit-identical with pooling
  // bypassed. Failures are enabled so the requeue path (the one place
  // blocks travel backwards through the pipeline) is exercised too.
  ThreadPool pool(8);
  SchemeFactoryOptions pooled_options;
  SchemeFactoryOptions bypass_options;
  bypass_options.request_pool = false;
  Runner pooled(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                pooled_options);
  Runner bypass(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                bypass_options);
  auto scenario = short_scenario(models::ModelId::kResNet50, 60.0, seconds(30), 2);
  scenario.failures = cluster::FailureInjectorConfig{
      .period_ms = seconds(12), .downtime_ms = seconds(4),
      .first_failure_ms = seconds(6)};
  for (SchemeId scheme : {SchemeId::kPaldia, SchemeId::kOracle}) {
    const auto a = pooled.run(scenario, scheme);
    const auto b = bypass.run(scenario, scheme);
    EXPECT_EQ(a.combined.requests, b.combined.requests) << scheme_name(scheme);
    EXPECT_EQ(a.combined.slo_compliance, b.combined.slo_compliance);
    EXPECT_EQ(a.combined.mean_latency_ms, b.combined.mean_latency_ms);
    EXPECT_EQ(a.combined.p50_latency_ms, b.combined.p50_latency_ms);
    EXPECT_EQ(a.combined.p95_latency_ms, b.combined.p95_latency_ms);
    EXPECT_EQ(a.combined.p99_latency_ms, b.combined.p99_latency_ms);
    EXPECT_EQ(a.combined.cost, b.combined.cost);
    EXPECT_EQ(a.combined.average_power, b.combined.average_power);
    EXPECT_EQ(a.combined.cold_starts, b.combined.cold_starts);
    EXPECT_EQ(a.combined.slo_violations, b.combined.slo_violations);
  }
}

TEST(Runner, CacheStatsZeroForPoliciesWithoutCache) {
  Runner runner(models::Zoo::instance(), hw::Catalog::instance());
  const auto scenario = short_scenario(models::ModelId::kResNet50, 30.0, seconds(20));
  const auto result = runner.run_once(scenario, SchemeId::kMoleculeCost, 5);
  EXPECT_EQ(result.combined.tmax_cache_hits, 0.0);
  EXPECT_EQ(result.combined.tmax_cache_misses, 0.0);
  EXPECT_EQ(result.combined.tmax_cache_hit_rate, 0.0);
}

TEST(SchemeFactory, BuildsEveryScheme) {
  models::ProfileTable profile(hw::Catalog::instance());
  SchemeFactory factory(models::Zoo::instance(), hw::Catalog::instance(), profile);
  for (SchemeId id :
       {SchemeId::kPaldia, SchemeId::kInflessLlamaCost, SchemeId::kInflessLlamaPerf,
        SchemeId::kMoleculeCost, SchemeId::kMoleculePerf, SchemeId::kOracle,
        SchemeId::kOfflineHybrid, SchemeId::kMpsOnlyPerf, SchemeId::kMpsOnlyCost,
        SchemeId::kTimeSharedPerf, SchemeId::kTimeSharedCost}) {
    auto policy = factory.make(id);
    ASSERT_NE(policy, nullptr) << scheme_name(id);
    EXPECT_EQ(policy->name(), scheme_name(id));
  }
}

TEST(SchemeFactory, InitialNodes) {
  models::ProfileTable profile(hw::Catalog::instance());
  SchemeFactory factory(models::Zoo::instance(), hw::Catalog::instance(), profile);
  EXPECT_EQ(factory.initial_node(SchemeId::kInflessLlamaPerf),
            hw::NodeType::kP3_2xlarge);
  EXPECT_EQ(factory.initial_node(SchemeId::kMpsOnlyCost), hw::NodeType::kG3s_xlarge);
  EXPECT_EQ(factory.initial_node(SchemeId::kPaldia), hw::NodeType::kC6i_2xlarge);
}

TEST(Summary, OutlierRuleApplied) {
  telemetry::RunMetrics base;
  base.scheme = "x";
  base.slo_compliance = 0.99;
  std::vector<telemetry::RunMetrics> runs(21, base);
  for (std::size_t i = 0; i < 20; ++i) {
    runs[i].slo_compliance = 0.99 + (i % 2 == 0 ? 0.001 : -0.001);
  }
  runs[20].slo_compliance = 0.10;  // a wild outlier repetition
  const auto aggregated = aggregate_metrics(runs);
  EXPECT_NEAR(aggregated.slo_compliance, 0.99, 0.005);
}

TEST(Summary, AggregateRunsPreservesWorkloadSlots) {
  RunResult rep;
  telemetry::RunMetrics m;
  m.scheme = "s";
  m.slo_compliance = 0.9;
  rep.per_workload = {m, m};
  rep.combined = m;
  const auto aggregated = aggregate_runs({rep, rep});
  EXPECT_EQ(aggregated.per_workload.size(), 2u);
  EXPECT_NEAR(aggregated.combined.slo_compliance, 0.9, 1e-12);
}

TEST(Scenario, PaperPeakScaling) {
  EXPECT_EQ(paper_peak_rps(models::ModelId::kGoogleNet), 225.0);   // high FBR
  EXPECT_EQ(paper_peak_rps(models::ModelId::kSeNet18), 450.0);     // low FBR
  EXPECT_EQ(paper_peak_rps(models::ModelId::kBert), 8.0);          // language
}

TEST(Scenario, BuildersProduceTraces) {
  const auto azure = azure_scenario(models::ModelId::kResNet50);
  EXPECT_EQ(azure.workloads.size(), 1u);
  EXPECT_NEAR(azure.workloads[0].trace.peak_rps(), 225.0, 60.0);
  const auto llm = llm_scenario(models::ModelId::kBert);
  EXPECT_NEAR(llm.workloads[0].trace.peak_rps(), 8.0, 6.0);
}

}  // namespace
}  // namespace paldia::exp
