// Fleet-scale selection scenario (exp/fleet.hpp): a generated catalog
// driven by 100+ endpoints through HardwareSelection directly.
#include "src/exp/fleet.hpp"

#include <gtest/gtest.h>

#include "src/hw/catalog_gen.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"

namespace paldia::exp {
namespace {

TEST(Fleet, ScheduleIsDeterministicAndPruneAgnostic) {
  const auto& zoo = models::Zoo::instance();
  FleetConfig config;
  config.endpoints = 16;
  config.ticks = 8;
  const auto a = build_fleet_schedule(config, zoo);
  config.prune = false;  // prune mode must not touch the demand stream
  config.slo_headroom = 0.70;
  const auto b = build_fleet_schedule(config, zoo);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].size(), b[e].size());
    for (std::size_t t = 0; t < a[e].size(); ++t) {
      ASSERT_EQ(a[e][t].models.size(), b[e][t].models.size());
      for (std::size_t m = 0; m < a[e][t].models.size(); ++m) {
        EXPECT_EQ(a[e][t].models[m].model, b[e][t].models[m].model);
        EXPECT_DOUBLE_EQ(a[e][t].models[m].observed_rps,
                         b[e][t].models[m].observed_rps);
        EXPECT_DOUBLE_EQ(a[e][t].models[m].predicted_rps,
                         b[e][t].models[m].predicted_rps);
        EXPECT_EQ(a[e][t].models[m].backlog, b[e][t].models[m].backlog);
      }
    }
  }
}

TEST(Fleet, PrunedAndLinearDigestsMatchOnLargeCatalog) {
  const auto& zoo = models::Zoo::instance();
  hw::CatalogGenConfig gen;
  gen.node_count = 64;
  const hw::Catalog catalog = hw::generate_catalog(gen);
  const models::ProfileTable profile(catalog);

  FleetConfig config;
  config.endpoints = 100;  // the issue's fleet floor
  config.ticks = 6;
  const auto schedule = build_fleet_schedule(config, zoo);

  FleetConfig linear = config;
  linear.prune = false;
  const auto pruned = run_fleet(config, schedule, zoo, catalog, profile);
  const auto exhaustive = run_fleet(linear, schedule, zoo, catalog, profile);

  EXPECT_EQ(pruned.choices, 600);
  EXPECT_EQ(pruned.choices, exhaustive.choices);
  EXPECT_EQ(pruned.feasible, exhaustive.feasible);
  EXPECT_EQ(pruned.cpu_choices, exhaustive.cpu_choices);
  EXPECT_EQ(pruned.choice_digest, exhaustive.choice_digest);
  EXPECT_DOUBLE_EQ(pruned.fleet_cost_per_hour, exhaustive.fleet_cost_per_hour);
  // The replayed work accounting is prune-agnostic by design.
  EXPECT_EQ(pruned.pool_candidates, exhaustive.pool_candidates);
  EXPECT_EQ(pruned.evaluated, exhaustive.evaluated);
  // And the pruned walk must actually save work at this catalog size.
  EXPECT_LT(pruned.evaluated, pruned.pool_candidates / 2)
      << "pruning saved less than half the sweep work on a 64-type catalog";
  EXPECT_EQ(pruned.catalog_size, 64);
  EXPECT_GT(pruned.slo_attainment, 0.0);
  EXPECT_GT(pruned.fleet_cost_per_hour, 0.0);
}

TEST(Fleet, HeadroomSweepTradesCostForAttainment) {
  const auto& zoo = models::Zoo::instance();
  hw::CatalogGenConfig gen;
  gen.node_count = 32;
  gen.seed = 11;
  const hw::Catalog catalog = hw::generate_catalog(gen);
  const models::ProfileTable profile(catalog);

  FleetConfig config;
  config.endpoints = 40;
  config.ticks = 6;
  const auto schedule = build_fleet_schedule(config, zoo);

  FleetConfig lax = config, strict = config;
  lax.slo_headroom = 0.95;   // largest budget: most candidates feasible
  strict.slo_headroom = 0.70;  // tightest budget
  const auto lax_result = run_fleet(lax, schedule, zoo, catalog, profile);
  const auto strict_result = run_fleet(strict, schedule, zoo, catalog, profile);
  // A tighter budget can only reduce the feasible count.
  EXPECT_LE(strict_result.feasible, lax_result.feasible);
}

}  // namespace
}  // namespace paldia::exp
