// End-to-end contract of the fleet-scale telemetry layer: with trace
// sampling on (--sample-rate=8) every export surface — sampled Chrome
// trace, metrics, decision log, rollup stream, analysis report — stays
// byte-identical across worker-thread counts and shard counts; the sampled
// report carries the exact same request/violation/cause/compliance counts
// as the unsampled one; compliant retention is statistically 1-in-N with
// violators always kept; and a rollup-only run (no tracer slots at all)
// reproduces compliance and attribution from the windowed stream alone.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/runner.hpp"
#include "src/obs/chrome_trace.hpp"
#include "src/obs/export.hpp"
#include "src/obs/report.hpp"
#include "src/trace/generators.hpp"

namespace paldia::exp {
namespace {

/// Failure injector on, so violations (and all eight cause classes' worth
/// of machinery) are exercised, not just the happy path.
Scenario telemetry_scenario() {
  Scenario scenario;
  scenario.name = "telemetry";
  trace::PoissonOptions options;
  options.mean_rps = 60.0;
  options.duration_ms = seconds(30);
  scenario.workloads.push_back(WorkloadSpec{
      models::ModelId::kResNet50, trace::make_poisson_trace(options)});
  scenario.repetitions = 2;
  scenario.failures = cluster::FailureInjectorConfig{
      .period_ms = seconds(12), .downtime_ms = seconds(4),
      .first_failure_ms = seconds(6)};
  return scenario;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Exports {
  std::string chrome_trace;
  std::string metrics;
  std::string decisions;
  std::string rollups;
  std::string report;
  obs::AnalysisReport analysis;
  std::uint64_t kept_lifecycles = 0;
  std::uint64_t sampled_out = 0;
};

Exports run_exports(std::uint32_t sample_rate, int shards, ThreadPool* pool,
                    const std::string& tag) {
  SchemeFactoryOptions options;
  options.sample_rate = sample_rate;
  options.shards = shards;
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), pool,
                options);
  const Scenario scenario = telemetry_scenario();

  obs::RunTrace trace;
  trace.collect_rollups = true;
  const RunResult result = runner.run(scenario, SchemeId::kPaldia, trace);

  Exports exports;
  std::ostringstream chrome;
  obs::write_chrome_trace(chrome, trace, scenario.name);
  exports.chrome_trace = chrome.str();

  const std::string dir = ::testing::TempDir();
  const std::string metrics_path = dir + "telemetry_metrics_" + tag + ".jsonl";
  const std::string decisions_path =
      dir + "telemetry_decisions_" + tag + ".jsonl";
  {
    obs::MetricsWriter metrics(metrics_path);
    EXPECT_TRUE(metrics.ok()) << metrics.error();
    metrics.write(result.combined, "telemetry-test");
    obs::DecisionLogWriter decisions(decisions_path);
    EXPECT_TRUE(decisions.ok()) << decisions.error();
    decisions.write(trace, scheme_name(SchemeId::kPaldia), scenario.name);
  }
  exports.metrics = slurp(metrics_path);
  exports.decisions = slurp(decisions_path);
  std::remove(metrics_path.c_str());
  std::remove(decisions_path.c_str());

  std::ostringstream rollups;
  obs::RollupWriter rollup_writer(rollups, obs::ExportFormat::kJsonl);
  rollup_writer.write(trace, scenario.name + " / Paldia");
  exports.rollups = rollups.str();

  exports.analysis =
      obs::analyze_with_zoo(obs::extract_run_data(trace, scenario.name));
  std::ostringstream report;
  obs::write_report_json(report, {exports.analysis});
  exports.report = report.str();

  for (const auto& rep : trace.reps) {
    for (const obs::TraceEvent& event : rep->events()) {
      exports.kept_lifecycles +=
          event.type == obs::TraceEvent::Type::kRequest ? 1 : 0;
    }
  }
  exports.sampled_out = trace.sampled_out();
  return exports;
}

TEST(TelemetryPipeline, SampledExportsBitIdenticalAcrossThreadsAndShards) {
  ThreadPool pool(8);
  const Exports serial = run_exports(8, 1, &pool, "r8s1");
  ASSERT_FALSE(serial.chrome_trace.empty());
  ASSERT_FALSE(serial.rollups.empty());
  EXPECT_GT(serial.sampled_out, 0u);

  const Exports sharded = run_exports(8, 4, &pool, "r8s4");
  EXPECT_EQ(serial.chrome_trace, sharded.chrome_trace);
  EXPECT_EQ(serial.metrics, sharded.metrics);
  EXPECT_EQ(serial.decisions, sharded.decisions);
  EXPECT_EQ(serial.rollups, sharded.rollups);
  EXPECT_EQ(serial.report, sharded.report);

  const Exports inline_drain = run_exports(8, 4, nullptr, "r8inline");
  EXPECT_EQ(serial.chrome_trace, inline_drain.chrome_trace);
  EXPECT_EQ(serial.metrics, inline_drain.metrics);
  EXPECT_EQ(serial.decisions, inline_drain.decisions);
  EXPECT_EQ(serial.rollups, inline_drain.rollups);
  EXPECT_EQ(serial.report, inline_drain.report);
}

TEST(TelemetryPipeline, SampledReportCountsMatchUnsampledExactly) {
  ThreadPool pool(8);
  const Exports full = run_exports(1, 1, &pool, "r1");
  const Exports sampled = run_exports(8, 1, &pool, "r8");

  EXPECT_EQ(full.sampled_out, 0u);
  EXPECT_GT(sampled.sampled_out, 0u);
  // The sampled trace is materially smaller...
  EXPECT_LT(sampled.kept_lifecycles, full.kept_lifecycles);
  // ...but the report's counts are exact: sampled-out completions come back
  // via the "sampled_out:<model>:<node>" counters.
  const obs::AnalysisReport& a = full.analysis;
  const obs::AnalysisReport& b = sampled.analysis;
  EXPECT_EQ(a.total.completed, b.total.completed);
  EXPECT_EQ(a.total.violations, b.total.violations);
  EXPECT_EQ(a.unserved, b.unserved);
  EXPECT_EQ(a.total.causes, b.total.causes);
  EXPECT_DOUBLE_EQ(a.compliance, b.compliance);
  EXPECT_EQ(b.sampled_out, sampled.sampled_out);
  ASSERT_EQ(a.per_model.size(), b.per_model.size());
  for (std::size_t i = 0; i < a.per_model.size(); ++i) {
    EXPECT_EQ(a.per_model[i].completed, b.per_model[i].completed);
    EXPECT_EQ(a.per_model[i].violations, b.per_model[i].violations);
  }
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].completed, b.per_node[i].completed);
    EXPECT_EQ(a.per_node[i].violations, b.per_node[i].violations);
  }
  // Rollups fold every completion regardless of sampling, so the streams
  // match byte for byte across sample rates.
  EXPECT_EQ(full.rollups, sampled.rollups);
}

TEST(TelemetryPipeline, CompliantRetentionIsStatisticallyOneInN) {
  ThreadPool pool(8);
  const std::uint32_t rate = 8;
  const Exports full = run_exports(1, 1, &pool, "stat1");
  const Exports sampled = run_exports(rate, 1, &pool, "stat8");

  // Completed lifecycles only (unserved requests never produce spans).
  const std::uint64_t total = sampled.kept_lifecycles + sampled.sampled_out;
  EXPECT_EQ(total, full.kept_lifecycles);
  const std::uint64_t violators =
      full.analysis.total.violations - full.analysis.unserved;
  ASSERT_GT(violators, 0u) << "scenario must produce violations";
  ASSERT_GT(total, violators);

  // Violators are always kept, so every drop came from the compliant pool.
  const std::uint64_t compliant = total - violators;
  const std::uint64_t compliant_kept = sampled.kept_lifecycles - violators;
  const double p = 1.0 / rate;
  const double expected = static_cast<double>(compliant) * p;
  const double sigma =
      std::sqrt(static_cast<double>(compliant) * p * (1.0 - p));
  EXPECT_NEAR(static_cast<double>(compliant_kept), expected, 5.0 * sigma)
      << "compliant " << compliant << " kept " << compliant_kept;
}

TEST(TelemetryPipeline, RollupOnlyRunReproducesComplianceWithoutTracerSlots) {
  ThreadPool pool(8);
  const Exports full = run_exports(1, 1, &pool, "ro_full");

  SchemeFactoryOptions options;
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                options);
  const Scenario scenario = telemetry_scenario();
  obs::RunTrace trace;
  trace.capture_events = false;  // no event buffers at all
  trace.collect_rollups = true;
  runner.run(scenario, SchemeId::kPaldia, trace);
  EXPECT_TRUE(trace.reps.empty()) << "rollup-only runs allocate no tracers";
  ASSERT_EQ(trace.rollups.size(), 2u);

  std::ostringstream rollups;
  obs::RollupWriter writer(rollups, obs::ExportFormat::kJsonl);
  writer.write(trace, scenario.name + " / Paldia");
  EXPECT_EQ(rollups.str(), full.rollups);

  std::vector<obs::AnalysisReport> reports;
  std::string error;
  ASSERT_TRUE(obs::analyze_rollup_stream(rollups.str(), &reports, &error))
      << error;
  ASSERT_EQ(reports.size(), 1u);
  const obs::AnalysisReport& rebuilt = reports[0];
  EXPECT_EQ(rebuilt.total.completed, full.analysis.total.completed);
  EXPECT_EQ(rebuilt.total.violations, full.analysis.total.violations);
  EXPECT_EQ(rebuilt.unserved, full.analysis.unserved);
  EXPECT_EQ(rebuilt.total.causes, full.analysis.total.causes);
  EXPECT_DOUBLE_EQ(rebuilt.compliance, full.analysis.compliance);
}

TEST(TelemetryPipeline, ProfileStaysOutOfByteComparedArtifacts) {
  // --profile timings are host wall clock; two profiled runs still agree on
  // every deterministic artifact, and profile rows appear only in the
  // report struct (whose JSON section is emitted just for profiled runs).
  ThreadPool pool(4);
  SchemeFactoryOptions options;
  options.sample_rate = 8;
  Runner runner(models::Zoo::instance(), hw::Catalog::instance(), &pool,
                options);
  const Scenario scenario = telemetry_scenario();

  auto profiled_run = [&] {
    obs::RunTrace trace;
    trace.collect_rollups = true;
    trace.profile = true;
    runner.run(scenario, SchemeId::kPaldia, trace);
    return trace;
  };
  const obs::RunTrace a = profiled_run();
  const obs::RunTrace b = profiled_run();

  // The chrome trace gains a self-profile lane (wall-clock durations, so
  // not byte-compared); the rollup stream stays deterministic.
  std::ostringstream chrome;
  obs::write_chrome_trace(chrome, a, scenario.name);
  EXPECT_NE(chrome.str().find("self-profile"), std::string::npos);
  std::ostringstream rollup_a;
  std::ostringstream rollup_b;
  obs::RollupWriter wa(rollup_a, obs::ExportFormat::kJsonl);
  obs::RollupWriter wb(rollup_b, obs::ExportFormat::kJsonl);
  wa.write(a, "x");
  wb.write(b, "x");
  EXPECT_EQ(rollup_a.str(), rollup_b.str());

  const auto rows = obs::summarize_profile(a);
  ASSERT_FALSE(rows.empty());
  bool saw_dispatch = false;
  for (const auto& row : rows) {
    EXPECT_GT(row.calls, 0u);
    saw_dispatch = saw_dispatch || row.phase == "dispatch_tick";
  }
  EXPECT_TRUE(saw_dispatch);
}

}  // namespace
}  // namespace paldia::exp
