// Integration tests of the full serving harness: gateway -> batcher ->
// autoscaler -> job distributor -> devices -> telemetry, driven by real
// policies on short traces.
#include <gtest/gtest.h>

#include "src/core/framework.hpp"
#include "src/core/paldia_policy.hpp"
#include "src/baselines/molecule.hpp"
#include "src/trace/generators.hpp"

namespace paldia::core {
namespace {

constexpr auto kModel = models::ModelId::kResNet50;

trace::Trace steady_trace(Rps rate, DurationMs duration) {
  trace::PoissonOptions options;
  options.mean_rps = rate;
  options.duration_ms = duration;
  options.seed = 11;
  return trace::make_poisson_trace(options);
}

struct Harness {
  explicit Harness(std::unique_ptr<SchedulerPolicy> policy,
                   FrameworkConfig config = {})
      : cluster(simulator, Rng(5)),
        framework(simulator, cluster, std::move(policy), Rng(6),
                  models::Zoo::instance(), config) {}

  sim::Simulator simulator;
  cluster::Cluster cluster;
  Framework framework;
  models::ProfileTable profile{hw::Catalog::instance()};
};

std::unique_ptr<SchedulerPolicy> paldia(const models::ProfileTable& profile) {
  return std::make_unique<PaldiaPolicy>(models::Zoo::instance(),
                                        hw::Catalog::instance(), profile);
}

TEST(Framework, ServesEveryRequestOfASteadyLowTrace) {
  models::ProfileTable profile(hw::Catalog::instance());
  Harness harness(paldia(profile));
  const auto trace = steady_trace(10.0, seconds(60));
  harness.framework.add_workload(kModel, trace);
  harness.framework.run();

  const auto& slo = harness.framework.slo(kModel);
  EXPECT_EQ(slo.total(), trace.total_requests());
  EXPECT_EQ(harness.framework.unserved_requests(), 0u);
  EXPECT_GT(slo.compliance(), 0.97);
  // Low traffic is served on a CPU node (Insight 1).
  EXPECT_FALSE(
      harness.cluster.catalog().spec(harness.framework.active_node()).is_gpu());
}

TEST(Framework, EscalatesToGpuUnderHighSteadyLoad) {
  models::ProfileTable profile(hw::Catalog::instance());
  Harness harness(paldia(profile));
  const auto trace = steady_trace(150.0, seconds(60));
  harness.framework.add_workload(kModel, trace);
  harness.framework.run();

  EXPECT_TRUE(
      harness.cluster.catalog().spec(harness.framework.active_node()).is_gpu());
  EXPECT_GT(harness.framework.slo(kModel).compliance(), 0.85);
  EXPECT_GE(harness.framework.hardware_switches(), 1);
}

TEST(Framework, CostAccruesOnlyForHeldNodes) {
  models::ProfileTable profile(hw::Catalog::instance());
  Harness harness(paldia(profile));
  harness.framework.add_workload(kModel, steady_trace(10.0, seconds(30)));
  harness.framework.run();
  const Dollars cost = harness.cluster.total_cost();
  EXPECT_GT(cost, 0.0);
  // Upper bound: the most expensive node for the whole run.
  EXPECT_LT(cost, 3.06 * (seconds(40) / kMsPerHour) * 2);
}

TEST(Framework, LatencyBreakdownComponentsAddUp) {
  models::ProfileTable profile(hw::Catalog::instance());
  Harness harness(paldia(profile));
  harness.framework.add_workload(kModel, steady_trace(30.0, seconds(30)));
  harness.framework.run();
  const auto breakdown = harness.framework.latency(kModel).breakdown_at(0.5, 0.2);
  ASSERT_GT(breakdown.samples, 0u);
  EXPECT_NEAR(breakdown.latency_ms,
              breakdown.solo_ms + breakdown.queue_ms + breakdown.interference_ms +
                  breakdown.cold_start_ms,
              breakdown.latency_ms * 0.05);
}

TEST(Framework, NodeFailureIsSurvivedWithRequeue) {
  models::ProfileTable profile(hw::Catalog::instance());
  Harness harness(paldia(profile));
  cluster::FailureInjectorConfig failures;
  failures.first_failure_ms = seconds(10);
  failures.period_ms = seconds(30);
  failures.downtime_ms = seconds(5);
  harness.framework.enable_failures(failures);
  const auto trace = steady_trace(20.0, seconds(45));
  harness.framework.add_workload(kModel, trace);
  harness.framework.run();

  const auto& slo = harness.framework.slo(kModel);
  // Every request is eventually accounted for despite the failures.
  EXPECT_EQ(slo.total() + harness.framework.unserved_requests(),
            trace.total_requests());
  EXPECT_GT(slo.compliance(), 0.50);
  EXPECT_GE(harness.framework.hardware_switches(), 1);  // failover happened
}

TEST(Framework, HostInterferenceDegradesCpuServing) {
  auto run = [](bool interfere) {
    models::ProfileTable profile(hw::Catalog::instance());
    Harness harness(std::make_unique<PaldiaPolicy>(models::Zoo::instance(),
                                                   hw::Catalog::instance(), profile));
    if (interfere) {
      harness.framework.enable_host_interference(
          {{"hog", 1.5, 0.05, seconds(1000), seconds(0.001)}});
    }
    harness.framework.add_workload(kModel, steady_trace(14.0, seconds(40)));
    harness.framework.run();
    return harness.framework.latency(kModel).mean_ms();
  };
  EXPECT_GT(run(true), run(false) * 1.05);
}

TEST(Framework, MultiWorkloadServing) {
  models::ProfileTable profile(hw::Catalog::instance());
  FrameworkConfig config;
  config.initial_node = hw::NodeType::kG3s_xlarge;
  Harness harness(
      std::make_unique<baselines::MoleculePolicy>(
          models::Zoo::instance(), hw::Catalog::instance(), profile,
          baselines::Variant::kCostEffective, hw::NodeType::kG3s_xlarge),
      config);
  const auto trace_a = steady_trace(40.0, seconds(30));
  const auto trace_b = steady_trace(25.0, seconds(30));
  harness.framework.add_workload(models::ModelId::kSeNet18, trace_a);
  harness.framework.add_workload(models::ModelId::kDenseNet121, trace_b);
  harness.framework.run();
  EXPECT_EQ(harness.framework.slo(models::ModelId::kSeNet18).total(),
            trace_a.total_requests());
  EXPECT_EQ(harness.framework.slo(models::ModelId::kDenseNet121).total(),
            trace_b.total_requests());
}

TEST(Framework, DeterministicAcrossRuns) {
  auto run = [] {
    models::ProfileTable profile(hw::Catalog::instance());
    Harness harness(std::make_unique<PaldiaPolicy>(models::Zoo::instance(),
                                                   hw::Catalog::instance(), profile));
    harness.framework.add_workload(kModel, steady_trace(25.0, seconds(30)));
    harness.framework.run();
    return std::pair{harness.framework.slo(kModel).compliance(),
                     harness.cluster.total_cost()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace paldia::core
