#include "src/core/job_distributor.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

constexpr auto kModel = models::ModelId::kResNet50;

class JobDistributorTest : public ::testing::Test {
 protected:
  JobDistributorTest()
      : node_(simulator_, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(1)),
        distributor_(
            batcher_, ids_,
            [this](const cluster::Request& request,
                   const cluster::ExecutionReport& report, hw::NodeType) {
              completions_.emplace_back(request, report);
            },
            [this](models::ModelId, cluster::RequestBlock requests) {
              for (const auto& request : requests) requeued_.push_back(request);
            }) {
    for (int i = 0; i < 8; ++i) node_.spawn_container(kModel, true);
  }

  cluster::RequestBlock make_requests(int n) {
    cluster::RequestBlock requests = arena_.acquire();
    for (int i = 0; i < n; ++i) {
      cluster::Request request;
      request.id = ids_.next_request();
      request.model = kModel;
      request.arrival_ms = i * 0.1;
      requests.push_back(request);
    }
    return requests;
  }

  sim::Simulator simulator_;
  cluster::RequestArena arena_;
  cluster::Node node_;
  Batcher batcher_;
  cluster::IdAllocator ids_;
  std::vector<std::pair<cluster::Request, cluster::ExecutionReport>> completions_;
  std::vector<cluster::Request> requeued_;
  JobDistributor distributor_;
};

TEST_F(JobDistributorTest, AllSpatialPlanCompletesEveryRequest) {
  SplitPlan plan;
  plan.spatial_requests = 100;
  plan.batch_size = 32;
  const int batches = distributor_.dispatch(node_, plan, make_requests(100), 0.0);
  EXPECT_EQ(batches, 4);  // ceil(100/32)
  simulator_.run_to_completion();
  EXPECT_EQ(completions_.size(), 100u);
  EXPECT_EQ(distributor_.in_flight(), 0);
}

TEST_F(JobDistributorTest, HybridPlanSplitsSpatialAndTemporal) {
  SplitPlan plan;
  plan.spatial_requests = 64;
  plan.temporal_requests = 64;
  plan.batch_size = 64;
  distributor_.dispatch(node_, plan, make_requests(128), 0.0);
  simulator_.run_to_completion();
  ASSERT_EQ(completions_.size(), 128u);
  // Temporal requests show up with queue time or start after the spatial
  // ones; at minimum every request completed unfailed.
  for (const auto& [request, report] : completions_) {
    EXPECT_FALSE(report.failed);
  }
}

TEST_F(JobDistributorTest, SpatialPortionTakesOldestRequests) {
  SplitPlan plan;
  plan.spatial_requests = 2;
  plan.temporal_requests = 2;
  plan.batch_size = 2;
  auto requests = make_requests(4);
  distributor_.dispatch(node_, plan, std::move(requests), 0.0);
  simulator_.run_to_completion();
  ASSERT_EQ(completions_.size(), 4u);
  // The two oldest ids (0, 1) execute spatially: they start immediately,
  // i.e. with zero lane-queue time.
  for (const auto& [request, report] : completions_) {
    if (request.id.value <= 1) {
      EXPECT_NEAR(report.queue_ms(), 0.0, 1e-6) << request.id.value;
    }
  }
}

TEST_F(JobDistributorTest, CpuPlanRoutesToCpuMode) {
  sim::Simulator simulator;
  cluster::Node cpu_node(simulator, NodeId{1}, hw::NodeType::kC6i_4xlarge, Rng(2));
  cpu_node.spawn_container(kModel, true);
  SplitPlan plan;
  plan.use_cpu = true;
  plan.temporal_requests = 6;
  plan.batch_size = 3;
  distributor_.dispatch(cpu_node, plan, make_requests(6), 0.0);
  simulator.run_to_completion();
  EXPECT_EQ(completions_.size(), 6u);
}

TEST_F(JobDistributorTest, FailureRequeuesRequests) {
  SplitPlan plan;
  plan.spatial_requests = 10;
  plan.batch_size = 10;
  distributor_.dispatch(node_, plan, make_requests(10), 0.0);
  node_.fail();
  EXPECT_EQ(requeued_.size(), 10u);
  EXPECT_TRUE(completions_.empty());
  EXPECT_EQ(distributor_.in_flight(), 0);
}

TEST_F(JobDistributorTest, EmptyDispatchIsNoop) {
  SplitPlan plan;
  EXPECT_EQ(distributor_.dispatch(node_, plan, {}, 0.0), 0);
  EXPECT_EQ(distributor_.in_flight(), 0);
}

TEST_F(JobDistributorTest, InFlightTracksOutstandingBatches) {
  SplitPlan plan;
  plan.spatial_requests = 64;
  plan.batch_size = 32;
  distributor_.dispatch(node_, plan, make_requests(64), 0.0);
  EXPECT_EQ(distributor_.in_flight(), 2);
  simulator_.run_to_completion();
  EXPECT_EQ(distributor_.in_flight(), 0);
}

TEST_F(JobDistributorTest, SpatialClampedToAvailableRequests) {
  SplitPlan plan;
  plan.spatial_requests = 1000;  // plan computed from a stale backlog
  plan.batch_size = 64;
  distributor_.dispatch(node_, plan, make_requests(10), 0.0);
  simulator_.run_to_completion();
  EXPECT_EQ(completions_.size(), 10u);
}

}  // namespace
}  // namespace paldia::core
