#include "src/core/autoscaler.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

constexpr auto kModel = models::ModelId::kDenseNet121;

TEST(Autoscaler, EnsureSpawnsMissingContainers) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(1));
  Autoscaler autoscaler;
  EXPECT_EQ(autoscaler.ensure(node, kModel, 3), 3);
  EXPECT_EQ(node.container_count(kModel), 3);
}

TEST(Autoscaler, EnsureCountsColdStartingContainers) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(2));
  Autoscaler autoscaler;
  autoscaler.ensure(node, kModel, 3);
  // Still cold-starting; a second ensure must not double-spawn.
  EXPECT_EQ(autoscaler.ensure(node, kModel, 3), 0);
  EXPECT_EQ(node.container_count(kModel), 3);
}

TEST(Autoscaler, EnsureRespectsMinContainers) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(3));
  Autoscaler autoscaler(AutoscalerConfig{.min_containers = 2});
  EXPECT_EQ(autoscaler.ensure(node, kModel, 0), 2);
}

TEST(Autoscaler, ReapOnlyAfterKeepAlive) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(4));
  AutoscalerConfig config;
  config.keep_alive_ms = minutes(10);
  Autoscaler autoscaler(config);
  for (int i = 0; i < 4; ++i) node.spawn_container(kModel, true);

  // Too early: nothing is idle beyond the keep-alive window.
  simulator.run_until(minutes(5));
  EXPECT_EQ(autoscaler.reap(node, kModel, 1, simulator.now()), 0);
  EXPECT_EQ(node.container_count(kModel), 4);

  // Past the keep-alive: surplus idle containers die, floor remains.
  simulator.run_until(minutes(11));
  EXPECT_EQ(autoscaler.reap(node, kModel, 1, simulator.now()), 3);
  EXPECT_EQ(node.container_count(kModel), 1);
}

TEST(Autoscaler, ReapKeepsNeededContainers) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(5));
  Autoscaler autoscaler(AutoscalerConfig{.keep_alive_ms = 0.0});
  for (int i = 0; i < 5; ++i) node.spawn_container(kModel, true);
  simulator.run_until(1000.0);
  autoscaler.reap(node, kModel, 3, simulator.now());
  EXPECT_EQ(node.container_count(kModel), 3);
}

TEST(Autoscaler, ReapNeverGoesBelowMin) {
  sim::Simulator simulator;
  cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(6));
  Autoscaler autoscaler(AutoscalerConfig{.keep_alive_ms = 0.0, .min_containers = 1});
  for (int i = 0; i < 3; ++i) node.spawn_container(kModel, true);
  simulator.run_until(1000.0);
  autoscaler.reap(node, kModel, 0, simulator.now());
  EXPECT_EQ(node.container_count(kModel), 1);
}

TEST(Autoscaler, DelayedTerminationReducesColdStarts) {
  // The Section IV-C claim in miniature: with keep-alive, a load dip does
  // not force a cold start when the load returns; without it, it does.
  auto run = [](DurationMs keep_alive) {
    sim::Simulator simulator;
    cluster::Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(7));
    Autoscaler autoscaler(AutoscalerConfig{.keep_alive_ms = keep_alive,
                                           .min_containers = 0});
    autoscaler.ensure(node, kModel, 2);
    simulator.run_until(seconds(10));           // containers warm
    autoscaler.reap(node, kModel, 0, simulator.now());  // load dipped
    autoscaler.ensure(node, kModel, 2);          // load came back
    return node.cold_starts();
  };
  EXPECT_GT(run(0.0), run(minutes(10)));
}

}  // namespace
}  // namespace paldia::core
