// Unit tests for the core::Fleet coordinator: catalog slicing, the
// deterministic splitmix64 request router, shard affinity, and workload
// splitting (request conservation across per-endpoint sub-traces). The
// end-to-end fleet byte-identity contract lives in the integration suite.
#include "src/core/fleet.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/exp/scheme_factory.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/models/zoo.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/generators.hpp"

namespace paldia::core {
namespace {

hw::Catalog generated(int nodes) {
  return hw::generate_catalog({.node_count = nodes, .seed = 7});
}

Fleet::PolicyFactory paldia_factory(const models::Zoo& zoo) {
  return [&zoo](int, const hw::Catalog& slice,
                const models::ProfileTable& profile) {
    exp::SchemeFactory factory(zoo, slice, profile);
    return factory.make(exp::SchemeId::kPaldia);
  };
}

TEST(SliceCatalog, SlicesAreDisjointSortedAndBounded) {
  const hw::Catalog catalog = generated(64);
  const auto slices = slice_catalog(catalog, 7);
  ASSERT_EQ(slices.size(), 7u);
  std::set<int> seen;
  for (const auto& slice : slices) {
    ASSERT_FALSE(slice.empty());
    ASSERT_LE(static_cast<int>(slice.size()), hw::kNodeTypeCount);
    for (std::size_t i = 0; i < slice.size(); ++i) {
      EXPECT_GE(slice[i], 0);
      EXPECT_LT(slice[i], static_cast<int>(catalog.size()));
      if (i > 0) EXPECT_LT(slice[i - 1], slice[i]);  // sorted, no dupes
      EXPECT_TRUE(seen.insert(slice[i]).second) << "node dealt twice";
    }
  }
}

TEST(SliceCatalog, EverySliceGetsACpuNode) {
  // CPUs are dealt before GPUs and truncation keeps the front of the deal,
  // so as long as the catalog has one CPU per endpoint, every slice can
  // start on a CPU node (the Fleet ctor relies on this for initial_node).
  const hw::Catalog catalog = generated(64);
  int cpu_nodes = 0;
  for (int i = 0; i < static_cast<int>(catalog.size()); ++i) {
    if (!catalog.spec(hw::NodeType(i)).is_gpu()) ++cpu_nodes;
  }
  for (const int endpoints : {1, 2, 4, 8, 16}) {
    if (endpoints > cpu_nodes) continue;
    const auto slices = slice_catalog(catalog, endpoints);
    for (const auto& slice : slices) {
      bool has_cpu = false;
      for (const int node : slice) {
        has_cpu |= !catalog.spec(hw::NodeType(node)).is_gpu();
      }
      EXPECT_TRUE(has_cpu) << "slice without a CPU node at endpoints="
                           << endpoints;
    }
  }
}

TEST(FleetRoute, DeterministicInRangeAndRoughlyBalanced) {
  constexpr int kEndpoints = 8;
  constexpr std::uint64_t kSeed = 0x9a1d1a;
  std::vector<int> hits(kEndpoints, 0);
  for (std::uint64_t k = 0; k < 80000; ++k) {
    const int target = Fleet::route(kSeed, k, kEndpoints);
    ASSERT_GE(target, 0);
    ASSERT_LT(target, kEndpoints);
    ASSERT_EQ(target, Fleet::route(kSeed, k, kEndpoints));  // pure function
    ++hits[static_cast<std::size_t>(target)];
  }
  for (const int count : hits) {
    EXPECT_GT(count, 9000);   // mean 10000 per endpoint
    EXPECT_LT(count, 11000);
  }
  // Different seeds route differently (the seed actually participates).
  int diffs = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    diffs += Fleet::route(1, k, kEndpoints) != Fleet::route(2, k, kEndpoints);
  }
  EXPECT_GT(diffs, 500);
}

TEST(Fleet, EndpointsAreShardAffine) {
  sim::Simulator simulator(sim::ShardOptions{.shards = 4});
  const hw::Catalog catalog = generated(32);
  FleetConfig config;
  config.endpoints = 8;
  Fleet fleet(simulator, Rng(17), models::Zoo::instance(), catalog, config,
              paldia_factory(models::Zoo::instance()));
  ASSERT_EQ(fleet.endpoint_count(), 8);
  for (int e = 0; e < fleet.endpoint_count(); ++e) {
    EXPECT_EQ(fleet.shard_of_endpoint(e), simulator.shard_of(e));
    EXPECT_GE(fleet.shard_of_endpoint(e), 1);  // shard 0 is control plane
    EXPECT_LT(fleet.shard_of_endpoint(e), 4);
    EXPECT_EQ(fleet.slice(e).size(), fleet.slice_nodes(e).size());
  }
}

TEST(Fleet, AddWorkloadConservesRequestsAcrossEndpoints) {
  sim::Simulator simulator(sim::ShardOptions{.shards = 4});
  const hw::Catalog catalog = generated(32);
  FleetConfig config;
  config.endpoints = 6;
  Fleet fleet(simulator, Rng(17), models::Zoo::instance(), catalog, config,
              paldia_factory(models::Zoo::instance()));
  trace::PoissonOptions poisson;
  poisson.duration_ms = 60'000.0;
  poisson.mean_rps = 200.0;
  poisson.seed = 9;
  const trace::Trace global = trace::make_poisson_trace(poisson);
  fleet.add_workload(models::ModelId::kResNet50, global);
  EXPECT_EQ(fleet.total_requests(), global.total_requests());
  std::uint64_t sum = 0;
  int endpoints_with_traffic = 0;
  for (int e = 0; e < fleet.endpoint_count(); ++e) {
    sum += fleet.endpoint_requests(e);
    endpoints_with_traffic += fleet.endpoint_requests(e) > 0 ? 1 : 0;
  }
  EXPECT_EQ(sum, global.total_requests());
  // ~12k arrivals over 6 endpoints: the router must spread the load.
  EXPECT_EQ(endpoints_with_traffic, fleet.endpoint_count());
}

TEST(Fleet, WorkloadSplitIsIndependentOfShardCount) {
  // The routing split happens before any event runs, so the per-endpoint
  // request counts cannot depend on the shard layout.
  const hw::Catalog catalog = generated(32);
  trace::PoissonOptions poisson;
  poisson.duration_ms = 30'000.0;
  poisson.mean_rps = 150.0;
  poisson.seed = 11;
  const trace::Trace global = trace::make_poisson_trace(poisson);
  std::vector<std::uint64_t> reference;
  for (const int shards : {1, 2, 4}) {
    sim::Simulator simulator(sim::ShardOptions{.shards = shards});
    FleetConfig config;
    config.endpoints = 5;
    Fleet fleet(simulator, Rng(17), models::Zoo::instance(), catalog, config,
                paldia_factory(models::Zoo::instance()));
    fleet.add_workload(models::ModelId::kMobileNet, global);
    std::vector<std::uint64_t> split;
    for (int e = 0; e < fleet.endpoint_count(); ++e) {
      split.push_back(fleet.endpoint_requests(e));
    }
    if (reference.empty()) {
      reference = split;
    } else {
      EXPECT_EQ(reference, split) << "shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace paldia::core
