#include "src/core/hardware_selection.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

class HardwareSelectionTest : public ::testing::Test {
 protected:
  HardwareSelectionTest()
      : profile_(hw::Catalog::instance()),
        optimizer_(perfmodel::TmaxModel(0.2)),
        selection_(models::Zoo::instance(), hw::Catalog::instance(), profile_,
                   optimizer_) {}

  static DemandSnapshot demand(models::ModelId model, Rps rate, int backlog = 0) {
    DemandSnapshot snapshot;
    snapshot.model = model;
    snapshot.observed_rps = rate;
    snapshot.predicted_rps = rate;
    snapshot.smoothed_rps = rate;
    snapshot.backlog = backlog;
    return snapshot;
  }

  models::ProfileTable profile_;
  perfmodel::YOptimizer optimizer_;
  HardwareSelection selection_;
};

TEST_F(HardwareSelectionTest, LowRateChoosesCpu) {
  // ~10 rps of ResNet 50: a CPU node suffices and short-circuits
  // (Algorithm 1's break).
  const auto choice = selection_.choose({demand(models::ModelId::kResNet50, 10.0)});
  EXPECT_FALSE(hw::Catalog::instance().spec(choice.node).is_gpu());
  EXPECT_TRUE(choice.feasible);
}

TEST_F(HardwareSelectionTest, MediumRateChoosesCheapGpu) {
  // 100 rps exceeds every CPU node; the M60 is the cheapest capable GPU.
  const auto choice = selection_.choose({demand(models::ModelId::kResNet50, 100.0)});
  EXPECT_EQ(choice.node, hw::NodeType::kG3s_xlarge);
  EXPECT_TRUE(choice.feasible);
}

TEST_F(HardwareSelectionTest, SaturatingRateEscalatesToV100) {
  // ~700 rps of GoogleNet: only the V100 can keep T_max near the SLO
  // (the Fig. 13a regime).
  const auto choice = selection_.choose({demand(models::ModelId::kGoogleNet, 700.0)});
  EXPECT_EQ(choice.node, hw::NodeType::kP3_2xlarge);
}

TEST_F(HardwareSelectionTest, LanguageModelSkipsCpu) {
  // BERT at even 2 rps cannot be served by any CPU node within the SLO.
  const auto choice = selection_.choose({demand(models::ModelId::kBert, 2.0)});
  EXPECT_TRUE(hw::Catalog::instance().spec(choice.node).is_gpu());
}

TEST_F(HardwareSelectionTest, ZeroDemandPicksCheapestCapableNode) {
  const auto choice = selection_.choose({demand(models::ModelId::kResNet50, 0.0)});
  EXPECT_TRUE(choice.feasible);
  // With no demand every capable node is feasible; cheapest-first wins.
  EXPECT_LE(hw::Catalog::instance().spec(choice.node).price_per_hour, 0.75);
}

TEST_F(HardwareSelectionTest, BacklogForcesEscalation) {
  // Low rate but a large accumulated backlog: CPU drain bound fails.
  const auto choice =
      selection_.choose({demand(models::ModelId::kResNet50, 5.0, 500)});
  EXPECT_TRUE(hw::Catalog::instance().spec(choice.node).is_gpu());
}

TEST_F(HardwareSelectionTest, EvaluateCpuFeasibility) {
  const auto feasible =
      selection_.evaluate(hw::NodeType::kC6i_4xlarge,
                          {demand(models::ModelId::kResNet50, 10.0)});
  EXPECT_TRUE(feasible.feasible);
  const auto infeasible =
      selection_.evaluate(hw::NodeType::kC6i_4xlarge,
                          {demand(models::ModelId::kResNet50, 120.0)});
  EXPECT_FALSE(infeasible.feasible);
}

TEST_F(HardwareSelectionTest, EvaluateGpuReportsSplit) {
  const auto choice =
      selection_.evaluate(hw::NodeType::kG3s_xlarge,
                          {demand(models::ModelId::kResNet50, 200.0)});
  EXPECT_TRUE(choice.feasible);
  EXPECT_GE(choice.best_y, 0);
  EXPECT_GT(choice.t_max_ms, 0.0);
}

TEST_F(HardwareSelectionTest, MultiModelDemandTakesWorstCase) {
  const auto light = selection_.evaluate(
      hw::NodeType::kG3s_xlarge, {demand(models::ModelId::kSeNet18, 50.0)});
  const auto combined = selection_.evaluate(
      hw::NodeType::kG3s_xlarge, {demand(models::ModelId::kSeNet18, 50.0),
                                  demand(models::ModelId::kDenseNet121, 150.0)});
  EXPECT_GE(combined.t_max_ms, light.t_max_ms);
}

TEST_F(HardwareSelectionTest, PerformanceBandPrefersCheaperGpu) {
  // At a rate the M60 comfortably serves, its T_max lands within the 50 ms
  // band of the V100's, so the cheaper node must win despite being slower.
  const auto m60 = selection_.evaluate(hw::NodeType::kG3s_xlarge,
                                       {demand(models::ModelId::kResNet50, 150.0)});
  const auto v100 = selection_.evaluate(hw::NodeType::kP3_2xlarge,
                                        {demand(models::ModelId::kResNet50, 150.0)});
  ASSERT_TRUE(m60.feasible);
  ASSERT_TRUE(v100.feasible);
  ASSERT_LE(m60.t_max_ms, v100.t_max_ms + 50.0);
  const auto choice = selection_.choose({demand(models::ModelId::kResNet50, 150.0)});
  EXPECT_EQ(choice.node, hw::NodeType::kG3s_xlarge);
}

TEST_F(HardwareSelectionTest, ParallelPoolGivesSameAnswer) {
  ThreadPool pool(4);
  HardwareSelection parallel_selection(models::Zoo::instance(),
                                       hw::Catalog::instance(), profile_, optimizer_,
                                       &pool);
  for (Rps rate : {5.0, 60.0, 300.0, 700.0}) {
    const auto serial = selection_.choose({demand(models::ModelId::kDpn92, rate)});
    const auto parallel =
        parallel_selection.choose({demand(models::ModelId::kDpn92, rate)});
    EXPECT_EQ(serial.node, parallel.node) << "rate " << rate;
  }
}

TEST_F(HardwareSelectionTest, NestedYSweepOnSharedPoolCompletes) {
  // Full Algorithm 1 nesting: choose() fans the candidate nodes out on the
  // pool AND every GPU candidate re-enters the same pool for its y-sweep.
  // With the old global-counter executor this deadlocked; it must now finish
  // and match the fully-serial answer.
  ThreadPool pool(4);
  perfmodel::YOptimizer pooled_optimizer(perfmodel::TmaxModel(0.2), &pool);
  HardwareSelection nested(models::Zoo::instance(), hw::Catalog::instance(),
                           profile_, pooled_optimizer, &pool);
  // Heavy demand so GPU candidates sweep a wide y range (>= 64 splits):
  // a large backlog drives N = coexisting_requests into the hundreds.
  const std::vector<DemandSnapshot> heavy = {
      demand(models::ModelId::kGoogleNet, 700.0, 1500)};
  ASSERT_GE(nested.coexisting_requests(heavy[0], 200.0), 200);
  const auto serial = selection_.choose(heavy);
  const auto parallel = nested.choose(heavy);
  EXPECT_EQ(parallel.node, serial.node);
  EXPECT_EQ(parallel.best_y, serial.best_y);
  EXPECT_EQ(parallel.t_max_ms, serial.t_max_ms);
}

TEST_F(HardwareSelectionTest, NegativePerformanceBandClampedToZero) {
  // A negative band used to make every feasible choice fail the band test,
  // leaving winner null and choose() dereferencing it. Clamped to 0 it must
  // behave like "cheapest within 0 ms of the best T_max".
  HardwareSelectionConfig config;
  config.performance_band_ms = -50.0;
  HardwareSelection negative_band(models::Zoo::instance(), hw::Catalog::instance(),
                                  profile_, optimizer_, nullptr, config);
  const auto choice =
      negative_band.choose({demand(models::ModelId::kResNet50, 150.0)});
  EXPECT_TRUE(choice.feasible);
  // Band 0 keeps only the most performant feasible candidate.
  HardwareSelectionConfig zero;
  zero.performance_band_ms = 0.0;
  HardwareSelection zero_band(models::Zoo::instance(), hw::Catalog::instance(),
                              profile_, optimizer_, nullptr, zero);
  const auto baseline = zero_band.choose({demand(models::ModelId::kResNet50, 150.0)});
  EXPECT_EQ(choice.node, baseline.node);
}

TEST_F(HardwareSelectionTest, NoPruneReturnsIdenticalChoices) {
  HardwareSelectionConfig config;
  config.prune = false;
  HardwareSelection linear(models::Zoo::instance(), hw::Catalog::instance(),
                           profile_, optimizer_, nullptr, config);
  for (Rps rate : {0.0, 5.0, 60.0, 150.0, 700.0, 20000.0}) {
    const auto pruned = selection_.choose({demand(models::ModelId::kResNet50, rate)});
    const auto exhaustive = linear.choose({demand(models::ModelId::kResNet50, rate)});
    EXPECT_EQ(pruned.node, exhaustive.node) << "rate " << rate;
    EXPECT_EQ(pruned.best_y, exhaustive.best_y) << "rate " << rate;
    EXPECT_EQ(pruned.t_max_ms, exhaustive.t_max_ms) << "rate " << rate;
    EXPECT_EQ(pruned.feasible, exhaustive.feasible) << "rate " << rate;
  }
}

TEST_F(HardwareSelectionTest, SweepRecordsPruningWork) {
  // CPU short-circuit: one evaluation settles it; the counters must show
  // the other pool members pruned, and add up exactly.
  SelectionSweep sweep;
  const auto choice = selection_.choose({demand(models::ModelId::kResNet50, 10.0)},
                                        &sweep);
  EXPECT_TRUE(sweep.cpu_short_circuit);
  EXPECT_FALSE(hw::Catalog::instance().spec(choice.node).is_gpu());
  EXPECT_EQ(sweep.pool_size, static_cast<int>(sweep.candidates.size()));
  EXPECT_EQ(sweep.pool_size, sweep.evaluated + sweep.pruned);
  EXPECT_GE(sweep.evaluated, 1);
  EXPECT_GT(sweep.pruned, 0);
  // Recorded mode still evaluates every pool member for the export tables.
  for (const auto& candidate : sweep.candidates) {
    EXPECT_GE(candidate.t_max_ms, 0.0);
  }
}

// Sweep: the chosen node's price must be monotone (non-decreasing) in the
// offered rate for a given model — more load never selects cheaper
// hardware.
class RateSweep : public ::testing::TestWithParam<int> {};

TEST_P(RateSweep, ChosenPriceMonotoneInRate) {
  models::ProfileTable profile(hw::Catalog::instance());
  perfmodel::YOptimizer optimizer(perfmodel::TmaxModel(0.2));
  HardwareSelection selection(models::Zoo::instance(), hw::Catalog::instance(),
                              profile, optimizer);
  const auto model = models::ModelId(GetParam());
  double previous_price = 0.0;
  for (Rps rate : {1.0, 10.0, 40.0, 120.0, 300.0, 600.0}) {
    DemandSnapshot snapshot;
    snapshot.model = model;
    snapshot.observed_rps = snapshot.predicted_rps = snapshot.smoothed_rps = rate;
    const auto choice = selection.choose({snapshot});
    const double price = hw::Catalog::instance().spec(choice.node).price_per_hour;
    EXPECT_GE(price, previous_price - 1e-9)
        << models::model_id_name(model) << " at " << rate << " rps";
    previous_price = price;
  }
}

INSTANTIATE_TEST_SUITE_P(VisionModels, RateSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 8, 10));

}  // namespace
}  // namespace paldia::core
