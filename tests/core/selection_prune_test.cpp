// Randomized equivalence: the pruned Algorithm 1 walk must return exactly
// the same HardwareChoice as the exhaustive linear sweep — same node, same
// split, bit-identical T_max — over generated catalogs of every shape the
// generator can produce (GPU-heavy, CPU-only, twin-rich) and demand points
// from idle to infeasible-everywhere. This is the in-process face of the
// fig04 --no-prune byte-identity CI check.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/hardware_selection.hpp"
#include "src/hw/catalog_gen.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/perfmodel/tmax_model.hpp"
#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::core {
namespace {

DemandSnapshot snapshot(models::ModelId model, Rps rate, int backlog) {
  DemandSnapshot demand;
  demand.model = model;
  demand.observed_rps = rate;
  demand.predicted_rps = rate;
  demand.smoothed_rps = rate;
  demand.backlog = backlog;
  return demand;
}

/// One random demand vector: 1-3 models, rates spanning idle to hopeless.
std::vector<DemandSnapshot> random_demand(Rng& rng) {
  const int resident = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<DemandSnapshot> demand;
  for (int m = 0; m < resident; ++m) {
    const auto model = static_cast<models::ModelId>(
        rng.uniform_int(0, models::kModelCount - 1));
    const double draw = rng.uniform();
    Rps rate;
    int backlog = 0;
    if (draw < 0.10) {
      rate = 0.0;  // idle endpoint
    } else if (draw < 0.80) {
      rate = rng.lognormal(2.5, 1.5);  // typical spread, ~1-300 rps
      backlog = static_cast<int>(rng.uniform_int(0, 48));
    } else if (draw < 0.93) {
      rate = rng.uniform(500.0, 3000.0);  // saturating / escalation regime
      backlog = static_cast<int>(rng.uniform_int(0, 256));
    } else {
      rate = rng.uniform(5000.0, 40000.0);  // infeasible everywhere
      backlog = static_cast<int>(rng.uniform_int(256, 4096));  // huge backlog
    }
    demand.push_back(snapshot(model, rate, backlog));
  }
  return demand;
}

void expect_identical(const HardwareChoice& pruned, const HardwareChoice& linear,
                      const std::string& context) {
  EXPECT_EQ(pruned.node, linear.node) << context;
  EXPECT_EQ(pruned.best_y, linear.best_y) << context;
  EXPECT_EQ(pruned.feasible, linear.feasible) << context;
  // Bit-identical, not approximately equal: the exports hash these bytes.
  EXPECT_EQ(std::memcmp(&pruned.t_max_ms, &linear.t_max_ms, sizeof(double)), 0)
      << context << " t_max " << pruned.t_max_ms << " vs " << linear.t_max_ms;
}

TEST(SelectionPrune, EquivalentToLinearOverGeneratedCatalogs) {
  const auto& zoo = models::Zoo::instance();
  Rng rng(0x5e1ec7ed);
  int cases = 0;
  int infeasible_cases = 0;
  int cpu_short_circuits = 0;
  // 20 catalog shapes x 50 demand points = 1000 equivalence cases.
  for (int c = 0; c < 20; ++c) {
    hw::CatalogGenConfig config;
    config.node_count = static_cast<int>(rng.uniform_int(8, 96));
    config.seed = rng.next_u64();
    // Every 5th catalog is CPU-only (the degraded fleet) and every 4th is
    // twin-rich (the dominance-dedup stress).
    config.gpu_fraction = (c % 5 == 4) ? 0.0 : rng.uniform(0.3, 0.85);
    config.twin_fraction = (c % 4 == 3) ? 0.5 : 0.2;
    const hw::Catalog catalog = hw::generate_catalog(config);
    const models::ProfileTable profile(catalog);
    const perfmodel::YOptimizer optimizer{perfmodel::TmaxModel(0.2)};

    HardwareSelectionConfig pruned_config, linear_config;
    linear_config.prune = false;
    const HardwareSelection pruned(zoo, catalog, profile, optimizer, nullptr,
                                   pruned_config);
    const HardwareSelection linear(zoo, catalog, profile, optimizer, nullptr,
                                   linear_config);

    for (int d = 0; d < 50; ++d) {
      const auto demand = random_demand(rng);
      const std::string context = "catalog " + std::to_string(c) + " demand " +
                                  std::to_string(d);
      const auto lazy_choice = pruned.choose(demand);
      const auto linear_choice = linear.choose(demand);
      expect_identical(lazy_choice, linear_choice, context);

      // Recorded mode: both settings evaluate the full pool (export parity)
      // and must agree with the lazy walk and with each other — including
      // the replayed work counters paldia-analyze reads.
      SelectionSweep pruned_sweep, linear_sweep;
      const auto recorded = pruned.choose(demand, &pruned_sweep);
      const auto recorded_linear = linear.choose(demand, &linear_sweep);
      expect_identical(recorded, lazy_choice, context + " (recorded vs lazy)");
      expect_identical(recorded_linear, linear_choice, context);
      EXPECT_EQ(pruned_sweep.pool_size, linear_sweep.pool_size) << context;
      EXPECT_EQ(pruned_sweep.evaluated, linear_sweep.evaluated) << context;
      EXPECT_EQ(pruned_sweep.pruned, linear_sweep.pruned) << context;
      EXPECT_EQ(pruned_sweep.pool_size,
                pruned_sweep.evaluated + pruned_sweep.pruned)
          << context;
      EXPECT_EQ(pruned_sweep.candidates.size(), linear_sweep.candidates.size())
          << context;
      EXPECT_EQ(pruned_sweep.cpu_short_circuit, linear_sweep.cpu_short_circuit)
          << context;

      ++cases;
      infeasible_cases += lazy_choice.feasible ? 0 : 1;
      cpu_short_circuits += pruned_sweep.cpu_short_circuit ? 1 : 0;
    }
  }
  EXPECT_EQ(cases, 1000);
  // The case mix must actually exercise the interesting regimes.
  EXPECT_GT(infeasible_cases, 20) << "no infeasible-everywhere coverage";
  EXPECT_GT(cpu_short_circuits, 50) << "no CPU short-circuit coverage";
}

TEST(SelectionPrune, EquivalentOnDefaultTableIICatalog) {
  const auto& zoo = models::Zoo::instance();
  const auto& catalog = hw::Catalog::instance();
  const models::ProfileTable profile(catalog);
  const perfmodel::YOptimizer optimizer{perfmodel::TmaxModel(0.2)};
  HardwareSelectionConfig linear_config;
  linear_config.prune = false;
  const HardwareSelection pruned(zoo, catalog, profile, optimizer);
  const HardwareSelection linear(zoo, catalog, profile, optimizer, nullptr,
                                 linear_config);
  Rng rng(0xab1e);
  for (int d = 0; d < 200; ++d) {
    const auto demand = random_demand(rng);
    expect_identical(pruned.choose(demand), linear.choose(demand),
                     "table2 demand " + std::to_string(d));
  }
}

TEST(SelectionPrune, LowerBoundNeverExceedsEvaluatedTmax) {
  const auto& zoo = models::Zoo::instance();
  Rng rng(0x10b0);
  for (int c = 0; c < 6; ++c) {
    hw::CatalogGenConfig config;
    config.node_count = 48;
    config.seed = 77 + static_cast<std::uint64_t>(c);
    const hw::Catalog catalog = hw::generate_catalog(config);
    const models::ProfileTable profile(catalog);
    const perfmodel::YOptimizer optimizer{perfmodel::TmaxModel(0.2)};
    const HardwareSelection selection(zoo, catalog, profile, optimizer);
    for (int d = 0; d < 40; ++d) {
      const auto demand = random_demand(rng);
      for (hw::NodeType gpu : catalog.gpus_by_capability_ascending()) {
        bool provably_infeasible = false;
        const DurationMs bound =
            selection.gpu_t_max_lower_bound(gpu, demand, &provably_infeasible);
        const auto choice = selection.evaluate(gpu, demand);
        EXPECT_LE(bound, choice.t_max_ms)
            << "catalog " << c << " demand " << d << " node "
            << catalog.name(gpu);
        if (provably_infeasible) {
          EXPECT_FALSE(choice.feasible)
              << "catalog " << c << " demand " << d << " node "
              << catalog.name(gpu);
        }
      }
    }
  }
}

TEST(SelectionPrune, CpuOnlyCatalogDegradesInsteadOfAborting) {
  const auto& zoo = models::Zoo::instance();
  hw::CatalogGenConfig config;
  config.node_count = 12;
  config.gpu_fraction = 0.0;
  config.seed = 5;
  const hw::Catalog catalog = hw::generate_catalog(config);
  ASSERT_FALSE(catalog.most_performant_gpu().has_value());
  const models::ProfileTable profile(catalog);
  const perfmodel::YOptimizer optimizer{perfmodel::TmaxModel(0.2)};
  for (bool prune : {true, false}) {
    HardwareSelectionConfig selection_config;
    selection_config.prune = prune;
    const HardwareSelection selection(zoo, catalog, profile, optimizer, nullptr,
                                      selection_config);
    // Light demand: a CPU node serves it.
    auto choice = selection.choose(
        {snapshot(models::ModelId::kResNet50, 4.0, 0)});
    EXPECT_FALSE(catalog.spec(choice.node).is_gpu());
    EXPECT_TRUE(choice.feasible);
    // Hopeless demand: no GPU to escalate to — the least-bad CPU comes back
    // marked infeasible rather than aborting.
    choice = selection.choose(
        {snapshot(models::ModelId::kBert, 2000.0, 512)});
    EXPECT_FALSE(catalog.spec(choice.node).is_gpu());
    EXPECT_FALSE(choice.feasible);
  }
}

}  // namespace
}  // namespace paldia::core
