#include "src/core/paldia_policy.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

class PaldiaPolicyTest : public ::testing::Test {
 protected:
  PaldiaPolicyTest() : profile_(hw::Catalog::instance()) {}

  std::unique_ptr<PaldiaPolicy> make_policy(PaldiaPolicyConfig config = {}) {
    return std::make_unique<PaldiaPolicy>(models::Zoo::instance(),
                                          hw::Catalog::instance(), profile_, nullptr,
                                          config);
  }

  static DemandSnapshot demand(Rps rate, int backlog = 0,
                               models::ModelId model = models::ModelId::kResNet50) {
    DemandSnapshot snapshot;
    snapshot.model = model;
    snapshot.observed_rps = rate;
    snapshot.predicted_rps = rate;
    snapshot.smoothed_rps = rate;
    snapshot.backlog = backlog;
    return snapshot;
  }

  models::ProfileTable profile_;
};

TEST_F(PaldiaPolicyTest, StaysOnCurrentWhenItIsChosen) {
  auto policy = make_policy();
  const auto current = hw::NodeType::kC6i_4xlarge;
  EXPECT_EQ(policy->select_hardware({demand(10.0)}, current, 0.0), current);
  EXPECT_EQ(policy->wait_counter(), 0);
}

TEST_F(PaldiaPolicyTest, FirstMismatchNeverSwitchesImmediately) {
  auto policy = make_policy();
  const auto current = hw::NodeType::kC6i_2xlarge;
  // Whatever the preferred target at 60 rps, the very first mismatch round
  // must hold the current node (both the emergency confirmation and the
  // wait counter require more than one round).
  EXPECT_EQ(policy->select_hardware({demand(60.0)}, current, 0.0), current);
}

TEST_F(PaldiaPolicyTest, EmergencyUpgradeBypassesHysteresisAfterConfirmation) {
  auto policy = make_policy();
  const auto current = hw::NodeType::kC6i_2xlarge;
  // 60 rps: far beyond any CPU node; current is infeasible -> emergency.
  const auto d = demand(60.0);
  const auto first = policy->select_hardware({d}, current, 0.0);
  EXPECT_EQ(first, current);  // first round only arms the confirmation
  const auto second = policy->select_hardware({d}, current, 500.0);
  EXPECT_NE(second, current);
  EXPECT_TRUE(hw::Catalog::instance().spec(second).is_gpu());
}

TEST_F(PaldiaPolicyTest, DowngradeWaitsForSustainedTrend) {
  PaldiaPolicyConfig config;
  config.downgrade_wait_limit = 5;
  auto policy = make_policy(config);
  const auto current = hw::NodeType::kG3s_xlarge;  // sitting on the M60
  const auto d = demand(5.0);                      // traffic died down
  hw::NodeType chosen = current;
  int rounds = 0;
  while (chosen == current && rounds < 20) {
    chosen = policy->select_hardware({d}, current, rounds * 500.0);
    ++rounds;
  }
  EXPECT_EQ(rounds, 5);  // switched exactly at the limit
  EXPECT_FALSE(hw::Catalog::instance().spec(chosen).is_gpu());
}

TEST_F(PaldiaPolicyTest, DowngradeCounterIsLeakyNotReset) {
  PaldiaPolicyConfig config;
  config.downgrade_wait_limit = 4;
  auto policy = make_policy(config);
  const auto current = hw::NodeType::kG3s_xlarge;
  // Three downgrade votes, one blip preferring current, then more votes:
  // the blip must only decrement, not erase, the accumulated trend.
  policy->select_hardware({demand(5.0)}, current, 0.0);
  policy->select_hardware({demand(5.0)}, current, 1.0);
  policy->select_hardware({demand(5.0)}, current, 2.0);
  policy->select_hardware({demand(140.0)}, current, 3.0);  // blip: stay on M60
  EXPECT_EQ(policy->select_hardware({demand(5.0)}, current, 4.0), current);
  const auto chosen = policy->select_hardware({demand(5.0)}, current, 5.0);
  EXPECT_NE(chosen, current);
}

TEST_F(PaldiaPolicyTest, PlanUsesCpuModeOnCpuNodes) {
  auto policy = make_policy();
  const auto plan =
      policy->plan_dispatch(demand(10.0, 5), hw::NodeType::kC6i_4xlarge, 0.0);
  EXPECT_TRUE(plan.use_cpu);
  EXPECT_EQ(plan.temporal_requests, 5);
  EXPECT_EQ(plan.spatial_requests, 0);
  EXPECT_GE(plan.batch_size, 1);
}

TEST_F(PaldiaPolicyTest, PlanLightGpuLoadIsAllSpatial) {
  auto policy = make_policy();
  const auto plan =
      policy->plan_dispatch(demand(50.0, 20), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_FALSE(plan.use_cpu);
  EXPECT_EQ(plan.spatial_requests, 20);
  EXPECT_EQ(plan.temporal_requests, 0);
}

TEST_F(PaldiaPolicyTest, PlanHeavyGpuLoadIsHybrid) {
  auto policy = make_policy();
  // A big backlog on the V100 (whose compute a single batch does not
  // saturate): the split must queue part of it (y > 0) and run the rest
  // concurrently.
  const auto plan =
      policy->plan_dispatch(demand(300.0, 1200), hw::NodeType::kP3_2xlarge, 0.0);
  EXPECT_GT(plan.temporal_requests, 0);
  EXPECT_GT(plan.spatial_requests, 0);
  EXPECT_EQ(plan.spatial_requests + plan.temporal_requests, 1200);
}

TEST_F(PaldiaPolicyTest, PlanOnComputeSaturatedGpuDegeneratesToTemporal) {
  auto policy = make_policy();
  // Full-size batches saturate the M60's SMs (compute fraction ~1), so
  // co-locating them buys nothing — the optimizer correctly prefers the
  // time-shared lane for nearly everything.
  const auto plan =
      policy->plan_dispatch(demand(300.0, 1200), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_GT(plan.temporal_requests, plan.spatial_requests);
}

TEST_F(PaldiaPolicyTest, PlanEmptyBacklogIsEmpty) {
  auto policy = make_policy();
  const auto plan = policy->plan_dispatch(demand(10.0, 0), hw::NodeType::kG3s_xlarge, 0.0);
  EXPECT_EQ(plan.spatial_requests + plan.temporal_requests, 0);
}

TEST_F(PaldiaPolicyTest, DesiredContainersFollowsPaperFormula) {
  auto policy = make_policy();
  SplitPlan plan;
  plan.spatial_requests = 130;
  plan.batch_size = 64;
  plan.temporal_requests = 10;
  // ceil(130/64) = 3 containers for the spatial batches.
  EXPECT_EQ(policy->desired_containers(plan), 3);
  plan.spatial_requests = 0;
  EXPECT_EQ(policy->desired_containers(plan), 1);  // warm one for temporal
}

TEST_F(PaldiaPolicyTest, FailoverEscalatesToCheapestStrongerGpu) {
  auto policy = make_policy();
  EXPECT_EQ(policy->on_node_failure(hw::NodeType::kG3s_xlarge),
            hw::NodeType::kP3_2xlarge);  // only stronger GPU
  EXPECT_EQ(policy->on_node_failure(hw::NodeType::kP2_xlarge),
            hw::NodeType::kG3s_xlarge);  // M60 stronger *and* cheaper than V100
  // From the top GPU, step down to the next best.
  EXPECT_EQ(policy->on_node_failure(hw::NodeType::kP3_2xlarge),
            hw::NodeType::kG3s_xlarge);
}

TEST_F(PaldiaPolicyTest, NameIsPaldia) {
  EXPECT_EQ(make_policy()->name(), "Paldia");
}

}  // namespace
}  // namespace paldia::core
