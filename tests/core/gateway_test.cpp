#include "src/core/gateway.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace paldia::core {
namespace {

constexpr auto kModel = models::ModelId::kResNet50;

TEST(Gateway, InjectedRequestsBecomeVisibleByArrivalTime) {
  Gateway gateway(Rng(1));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 10, 0.0, 100.0);
  EXPECT_EQ(gateway.pending_total(kModel), 10);
  // Not all have "arrived" at t = 1 (offsets spread over [0, 100)).
  EXPECT_LE(gateway.pending(kModel, 1.0), 10);
  EXPECT_EQ(gateway.pending(kModel, 100.0), 10);
}

TEST(Gateway, TakeRespectsArrivalOrderAndTime) {
  Gateway gateway(Rng(2));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 20, 0.0, 100.0);
  const auto taken = gateway.take(kModel, 50, 100.0);
  ASSERT_EQ(taken.size(), 20u);
  for (std::size_t i = 1; i < taken.size(); ++i) {
    EXPECT_LE(taken[i - 1].arrival_ms, taken[i].arrival_ms);
  }
  EXPECT_EQ(gateway.pending(kModel, 100.0), 0);
}

TEST(Gateway, TakeHonoursMaxCount) {
  Gateway gateway(Rng(3));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 10, 0.0, 1.0);
  const auto first = gateway.take(kModel, 4, 10.0);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(gateway.pending(kModel, 10.0), 6);
}

TEST(Gateway, RequestIdsUnique) {
  Gateway gateway(Rng(4));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 100, 0.0, 1.0);
  auto taken = gateway.take(kModel, 100, 10.0);
  std::set<std::int64_t> ids;
  for (const auto& request : taken) ids.insert(request.id.value);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(Gateway, OldestAge) {
  Gateway gateway(Rng(5));
  gateway.add_workload(kModel);
  EXPECT_EQ(gateway.oldest_age(kModel, 100.0), 0.0);
  gateway.inject(kModel, 1, 0.0, 1.0);
  EXPECT_NEAR(gateway.oldest_age(kModel, 50.0), 50.0, 1.0);
}

TEST(Gateway, RequeuePreservesArrivalAndReorders) {
  Gateway gateway(Rng(6));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 5, 0.0, 1.0);
  auto taken = gateway.take(kModel, 5, 10.0);
  gateway.inject(kModel, 5, 100.0, 1.0);
  gateway.requeue(kModel, std::move(taken));  // failed batch comes back
  const auto again = gateway.take(kModel, 10, 200.0);
  ASSERT_EQ(again.size(), 10u);
  // The re-queued (older) requests must come out first.
  EXPECT_LT(again.front().arrival_ms, 10.0);
  for (std::size_t i = 1; i < again.size(); ++i) {
    EXPECT_LE(again[i - 1].arrival_ms, again[i].arrival_ms);
  }
}

TEST(Gateway, SortedByArrivalInvariantSurvivesRepeatedRequeueAfterFailure) {
  // Failure-injector shape: batches are taken, fail mid-flight, and come
  // back through requeue() while fresh arrivals keep landing. The queue's
  // sorted-by-arrival invariant (which take()/pending() binary-search on)
  // must hold through arbitrarily many such cycles, with no request lost.
  Gateway gateway(Rng(42));
  gateway.add_workload(kModel);
  std::set<std::int64_t> expected_ids;
  gateway.inject(kModel, 16, 0.0, 50.0);
  for (int cycle = 0; cycle < 8; ++cycle) {
    const TimeMs now = 100.0 * (cycle + 1);
    auto doomed = gateway.take(kModel, 7, now);
    gateway.inject(kModel, 4, now, 50.0);  // fresh arrivals mid-failure
    gateway.requeue(kModel, std::move(doomed));
  }
  const int total = 16 + 8 * 4;
  EXPECT_EQ(gateway.pending_total(kModel), total);
  auto drained = gateway.take(kModel, total, 10'000.0);
  ASSERT_EQ(drained.size(), static_cast<std::size_t>(total));
  for (std::size_t i = 0; i < drained.size(); ++i) {
    if (i > 0) EXPECT_LE(drained[i - 1].arrival_ms, drained[i].arrival_ms) << i;
    expected_ids.insert(drained[i].id.value);
  }
  EXPECT_EQ(expected_ids.size(), static_cast<std::size_t>(total));  // none lost
}

TEST(Gateway, ObservedRateTracksInjections) {
  Gateway gateway(Rng(7));
  gateway.add_workload(kModel);
  // 50 arrivals inside the trailing 1 s window -> 50 rps.
  gateway.inject(kModel, 50, 0.0, 500.0);
  EXPECT_NEAR(gateway.observed_rate(kModel, 500.0), 50.0, 5.0);
  // Window slides: half a second later some arrivals are still in window.
  EXPECT_NEAR(gateway.observed_rate(kModel, 1000.0), 50.0, 15.0);
  EXPECT_EQ(gateway.observed_rate(kModel, 2000.0), 0.0);
}

TEST(Gateway, MultipleWorkloadsIsolated) {
  Gateway gateway(Rng(8));
  gateway.add_workload(models::ModelId::kResNet50);
  gateway.add_workload(models::ModelId::kSeNet18);
  gateway.inject(models::ModelId::kResNet50, 5, 0.0, 1.0);
  EXPECT_EQ(gateway.pending_total(models::ModelId::kResNet50), 5);
  EXPECT_EQ(gateway.pending_total(models::ModelId::kSeNet18), 0);
}

TEST(Gateway, AddWorkloadIdempotent) {
  Gateway gateway(Rng(9));
  gateway.add_workload(kModel);
  gateway.add_workload(kModel);
  EXPECT_EQ(gateway.workloads().size(), 1u);
}

TEST(Gateway, ZeroCountInjectIsNoop) {
  Gateway gateway(Rng(10));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 0, 0.0, 100.0);
  EXPECT_EQ(gateway.pending_total(kModel), 0);
}

TEST(Gateway, FleetFanInRandomizedAgainstReferenceModel) {
  // Fleet fan-in shape: many models on one gateway under a random
  // interleaving of inject / take / requeue (batches held in flight come
  // back after simulated failures) while the clock only moves forward.
  // Cross-checked against a reference count model per model, plus the
  // queue invariants every consumer depends on:
  //   * take() returns arrival-sorted requests, all arrived (<= now);
  //   * an uncapped take drains everything arrived (oldest-first implies
  //     nothing arrived may linger behind);
  //   * pending_total == injected + requeued - taken, nothing lost or
  //     duplicated (ids conserved through requeue).
  const std::vector<models::ModelId> kModels = {
      models::ModelId::kResNet50, models::ModelId::kMobileNet,
      models::ModelId::kBert, models::ModelId::kAlbert,
      models::ModelId::kShuffleNetV2};
  Gateway gateway(Rng(11));
  std::vector<std::int64_t> injected(kModels.size(), 0);
  std::vector<std::int64_t> drained(kModels.size(), 0);
  // Injection epochs per model advance monotonically and never overlap —
  // the trace-driven contract inject() relies on to append in arrival
  // order (arrivals inside one epoch are sorted by the gateway itself).
  std::vector<double> epoch_cursor(kModels.size(), 0.0);
  std::vector<std::vector<cluster::RequestBlock>> in_flight(kModels.size());
  std::vector<std::set<std::int64_t>> seen_ids(kModels.size());
  for (const auto model : kModels) gateway.add_workload(model);

  std::mt19937_64 rng(2024);
  double now = 0.0;
  for (int step = 0; step < 2000; ++step) {
    const std::size_t m = rng() % kModels.size();
    const auto model = kModels[m];
    switch (rng() % 4) {
      case 0: {  // inject the model's next trace epoch
        const int count = static_cast<int>(rng() % 20);
        const double epoch = 1.0 + static_cast<double>(rng() % 50);
        epoch_cursor[m] = std::max(epoch_cursor[m], now);
        gateway.inject(model, count, epoch_cursor[m], epoch);
        epoch_cursor[m] += epoch;
        injected[m] += count;
        break;
      }
      case 1: {  // take a capped batch
        now += static_cast<double>(rng() % 10);
        const int max_count = 1 + static_cast<int>(rng() % 8);
        auto block = gateway.take(model, max_count, now);
        ASSERT_LE(static_cast<int>(block.size()), max_count);
        for (std::size_t i = 0; i < block.size(); ++i) {
          ASSERT_LE(block[i].arrival_ms, now);
          if (i > 0) ASSERT_LE(block[i - 1].arrival_ms, block[i].arrival_ms);
          seen_ids[m].insert(block[i].id.value);
        }
        drained[m] += static_cast<std::int64_t>(block.size());
        if (!block.empty() && rng() % 2 == 0) {
          in_flight[m].push_back(std::move(block));  // fails later, requeues
          drained[m] -= static_cast<std::int64_t>(in_flight[m].back().size());
        }
        break;
      }
      case 2: {  // a held batch comes back (failure path)
        if (!in_flight[m].empty()) {
          auto block = std::move(in_flight[m].back());
          in_flight[m].pop_back();
          gateway.requeue(model, std::move(block));
        }
        break;
      }
      default: {  // uncapped take must drain everything arrived
        now += static_cast<double>(rng() % 5);
        auto block = gateway.take(model, 1 << 20, now);
        for (std::size_t i = 0; i < block.size(); ++i) {
          ASSERT_LE(block[i].arrival_ms, now);
          if (i > 0) ASSERT_LE(block[i - 1].arrival_ms, block[i].arrival_ms);
          seen_ids[m].insert(block[i].id.value);
        }
        drained[m] += static_cast<std::int64_t>(block.size());
        EXPECT_EQ(gateway.pending(model, now), 0);
        break;
      }
    }
    std::int64_t held = 0;
    for (const auto& block : in_flight[m]) {
      held += static_cast<std::int64_t>(block.size());
    }
    ASSERT_EQ(gateway.pending_total(model), injected[m] - drained[m] - held)
        << "model " << static_cast<int>(model) << " step " << step;
  }

  // Final drain: requeue everything still held, then empty each queue and
  // check conservation — every injected request comes out exactly once.
  now += 1000.0;
  for (std::size_t m = 0; m < kModels.size(); ++m) {
    for (auto& block : in_flight[m]) {
      gateway.requeue(kModels[m], std::move(block));
    }
    in_flight[m].clear();
    auto block = gateway.take(kModels[m], 1 << 20, now);
    for (std::size_t i = 0; i < block.size(); ++i) {
      if (i > 0) ASSERT_LE(block[i - 1].arrival_ms, block[i].arrival_ms);
      seen_ids[m].insert(block[i].id.value);
    }
    drained[m] += static_cast<std::int64_t>(block.size());
    EXPECT_EQ(gateway.pending_total(kModels[m]), 0);
    EXPECT_EQ(drained[m], injected[m]);
    EXPECT_EQ(seen_ids[m].size(), static_cast<std::size_t>(injected[m]));
  }
}

}  // namespace
}  // namespace paldia::core
