#include "src/core/gateway.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

constexpr auto kModel = models::ModelId::kResNet50;

TEST(Gateway, InjectedRequestsBecomeVisibleByArrivalTime) {
  Gateway gateway(Rng(1));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 10, 0.0, 100.0);
  EXPECT_EQ(gateway.pending_total(kModel), 10);
  // Not all have "arrived" at t = 1 (offsets spread over [0, 100)).
  EXPECT_LE(gateway.pending(kModel, 1.0), 10);
  EXPECT_EQ(gateway.pending(kModel, 100.0), 10);
}

TEST(Gateway, TakeRespectsArrivalOrderAndTime) {
  Gateway gateway(Rng(2));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 20, 0.0, 100.0);
  const auto taken = gateway.take(kModel, 50, 100.0);
  ASSERT_EQ(taken.size(), 20u);
  for (std::size_t i = 1; i < taken.size(); ++i) {
    EXPECT_LE(taken[i - 1].arrival_ms, taken[i].arrival_ms);
  }
  EXPECT_EQ(gateway.pending(kModel, 100.0), 0);
}

TEST(Gateway, TakeHonoursMaxCount) {
  Gateway gateway(Rng(3));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 10, 0.0, 1.0);
  const auto first = gateway.take(kModel, 4, 10.0);
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(gateway.pending(kModel, 10.0), 6);
}

TEST(Gateway, RequestIdsUnique) {
  Gateway gateway(Rng(4));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 100, 0.0, 1.0);
  auto taken = gateway.take(kModel, 100, 10.0);
  std::set<std::int64_t> ids;
  for (const auto& request : taken) ids.insert(request.id.value);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(Gateway, OldestAge) {
  Gateway gateway(Rng(5));
  gateway.add_workload(kModel);
  EXPECT_EQ(gateway.oldest_age(kModel, 100.0), 0.0);
  gateway.inject(kModel, 1, 0.0, 1.0);
  EXPECT_NEAR(gateway.oldest_age(kModel, 50.0), 50.0, 1.0);
}

TEST(Gateway, RequeuePreservesArrivalAndReorders) {
  Gateway gateway(Rng(6));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 5, 0.0, 1.0);
  auto taken = gateway.take(kModel, 5, 10.0);
  gateway.inject(kModel, 5, 100.0, 1.0);
  gateway.requeue(kModel, taken);  // failed batch comes back
  const auto again = gateway.take(kModel, 10, 200.0);
  ASSERT_EQ(again.size(), 10u);
  // The re-queued (older) requests must come out first.
  EXPECT_LT(again.front().arrival_ms, 10.0);
  for (std::size_t i = 1; i < again.size(); ++i) {
    EXPECT_LE(again[i - 1].arrival_ms, again[i].arrival_ms);
  }
}

TEST(Gateway, ObservedRateTracksInjections) {
  Gateway gateway(Rng(7));
  gateway.add_workload(kModel);
  // 50 arrivals inside the trailing 1 s window -> 50 rps.
  gateway.inject(kModel, 50, 0.0, 500.0);
  EXPECT_NEAR(gateway.observed_rate(kModel, 500.0), 50.0, 5.0);
  // Window slides: half a second later some arrivals are still in window.
  EXPECT_NEAR(gateway.observed_rate(kModel, 1000.0), 50.0, 15.0);
  EXPECT_EQ(gateway.observed_rate(kModel, 2000.0), 0.0);
}

TEST(Gateway, MultipleWorkloadsIsolated) {
  Gateway gateway(Rng(8));
  gateway.add_workload(models::ModelId::kResNet50);
  gateway.add_workload(models::ModelId::kSeNet18);
  gateway.inject(models::ModelId::kResNet50, 5, 0.0, 1.0);
  EXPECT_EQ(gateway.pending_total(models::ModelId::kResNet50), 5);
  EXPECT_EQ(gateway.pending_total(models::ModelId::kSeNet18), 0);
}

TEST(Gateway, AddWorkloadIdempotent) {
  Gateway gateway(Rng(9));
  gateway.add_workload(kModel);
  gateway.add_workload(kModel);
  EXPECT_EQ(gateway.workloads().size(), 1u);
}

TEST(Gateway, ZeroCountInjectIsNoop) {
  Gateway gateway(Rng(10));
  gateway.add_workload(kModel);
  gateway.inject(kModel, 0, 0.0, 100.0);
  EXPECT_EQ(gateway.pending_total(kModel), 0);
}

}  // namespace
}  // namespace paldia::core
