#include "src/core/batcher.hpp"

#include <gtest/gtest.h>

namespace paldia::core {
namespace {

cluster::RequestBlock make_requests(int n) {
  static cluster::RequestArena arena;
  cluster::RequestBlock requests = arena.acquire();
  for (int i = 0; i < n; ++i) {
    cluster::Request request;
    request.id = RequestId{i};
    request.model = models::ModelId::kResNet50;
    request.arrival_ms = i;
    requests.push_back(request);
  }
  return requests;
}

TEST(Batcher, DispatchesWhenBatchFull) {
  Batcher batcher;
  EXPECT_TRUE(batcher.should_dispatch(64, 64, 0.0));
  EXPECT_TRUE(batcher.should_dispatch(100, 64, 0.0));
  EXPECT_FALSE(batcher.should_dispatch(63, 64, 0.0));
}

TEST(Batcher, DispatchesWhenOldestAgesOut) {
  Batcher batcher(BatcherConfig{.max_wait_ms = 50.0});
  EXPECT_FALSE(batcher.should_dispatch(1, 64, 49.0));
  EXPECT_TRUE(batcher.should_dispatch(1, 64, 50.0));
}

TEST(Batcher, NeverDispatchesEmptyQueue) {
  Batcher batcher;
  EXPECT_FALSE(batcher.should_dispatch(0, 64, 1000.0));
}

TEST(Batcher, ChunksIntoFlexibleBatches) {
  Batcher batcher;
  cluster::IdAllocator ids;
  const auto batches = batcher.chunk(make_requests(150), 64, 10.0, ids);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 64);
  EXPECT_EQ(batches[1].size(), 64);
  EXPECT_EQ(batches[2].size(), 22);  // flexible final batch
  for (const auto& batch : batches) {
    EXPECT_EQ(batch.formed_ms, 10.0);
    EXPECT_EQ(batch.model, models::ModelId::kResNet50);
  }
}

TEST(Batcher, ChunkPreservesRequestOrder) {
  Batcher batcher;
  cluster::IdAllocator ids;
  const auto batches = batcher.chunk(make_requests(10), 4, 0.0, ids);
  std::int64_t expected = 0;
  for (const auto& batch : batches) {
    for (const auto& request : batch.requests) {
      EXPECT_EQ(request.id.value, expected++);
    }
  }
}

TEST(Batcher, ChunkEmptyInput) {
  Batcher batcher;
  cluster::IdAllocator ids;
  EXPECT_TRUE(batcher.chunk({}, 64, 0.0, ids).empty());
}

TEST(Batcher, ChunkClampsNonPositiveBatchSize) {
  Batcher batcher;
  cluster::IdAllocator ids;
  const auto batches = batcher.chunk(make_requests(3), 0, 0.0, ids);
  EXPECT_EQ(batches.size(), 3u);  // batch size clamped to 1
}

TEST(Batcher, BatchIdsUnique) {
  Batcher batcher;
  cluster::IdAllocator ids;
  auto first = batcher.chunk(make_requests(10), 2, 0.0, ids);
  auto second = batcher.chunk(make_requests(10), 2, 0.0, ids);
  std::set<std::int64_t> seen;
  for (const auto& batch : first) seen.insert(batch.id.value);
  for (const auto& batch : second) seen.insert(batch.id.value);
  EXPECT_EQ(seen.size(), first.size() + second.size());
}

TEST(Batch, OldestArrival) {
  Batcher batcher;
  cluster::IdAllocator ids;
  auto batches = batcher.chunk(make_requests(5), 5, 0.0, ids);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].oldest_arrival_ms(), 0.0);
}

}  // namespace
}  // namespace paldia::core
