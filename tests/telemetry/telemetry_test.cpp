#include <gtest/gtest.h>

#include "src/telemetry/cost_tracker.hpp"
#include "src/telemetry/latency_recorder.hpp"
#include "src/telemetry/metrics.hpp"
#include "src/telemetry/power_tracker.hpp"
#include "src/telemetry/slo_tracker.hpp"
#include "src/telemetry/util_tracker.hpp"

namespace paldia::telemetry {
namespace {

TEST(LatencyRecorder, RecordsBasicStats) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) {
    recorder.record({static_cast<double>(i), 10.0, 1.0, 0.5, 0.0});
  }
  EXPECT_EQ(recorder.count(), 100u);
  EXPECT_NEAR(recorder.mean_ms(), 50.5, 1.0);
  EXPECT_NEAR(recorder.p99_ms(), 99.0, 2.0);
}

TEST(LatencyRecorder, TailBreakdownAttributesComponents) {
  LatencyRecorder recorder;
  // 99% fast requests dominated by solo time; 1% slow ones dominated by
  // queueing — the P99 breakdown must be queue-heavy.
  for (int i = 0; i < 9'900; ++i) recorder.record({50.0, 45.0, 5.0, 0.0, 0.0});
  for (int i = 0; i < 100; ++i) recorder.record({500.0, 45.0, 450.0, 5.0, 0.0});
  const auto breakdown = recorder.breakdown_at(0.995);
  EXPECT_GT(breakdown.queue_ms, breakdown.solo_ms);
  EXPECT_GT(breakdown.samples, 0u);
  EXPECT_NEAR(breakdown.latency_ms, 500.0, 50.0);
}

TEST(LatencyRecorder, ReservoirBoundsMemory) {
  LatencyRecorder recorder(/*reservoir_capacity=*/1000);
  for (int i = 0; i < 100'000; ++i) {
    recorder.record({static_cast<double>(i % 200), 10.0, 1.0, 0.0, 0.0});
  }
  EXPECT_EQ(recorder.count(), 100'000u);
  const auto breakdown = recorder.breakdown_at(0.5, 0.1);
  EXPECT_GT(breakdown.samples, 0u);
  EXPECT_LE(breakdown.samples, 1000u);
}

TEST(LatencyRecorder, CdfExport) {
  LatencyRecorder recorder;
  for (int i = 0; i < 1000; ++i) recorder.record({static_cast<double>(i), 0, 0, 0, 0});
  const auto cdf = recorder.cdf();
  ASSERT_FALSE(cdf.empty());
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(SloTracker, ComplianceCounting) {
  SloTracker tracker(200.0);
  tracker.record_completion(0.0, 100.0);   // met
  tracker.record_completion(0.0, 200.0);   // met (boundary)
  tracker.record_completion(0.0, 300.0);   // violated
  EXPECT_EQ(tracker.total(), 3u);
  EXPECT_EQ(tracker.compliant(), 2u);
  EXPECT_NEAR(tracker.compliance(), 2.0 / 3.0, 1e-12);
}

TEST(SloTracker, EmptyIsFullyCompliant) {
  SloTracker tracker(200.0);
  EXPECT_EQ(tracker.compliance(), 1.0);
}

TEST(SloTracker, GoodputSeries) {
  SloTracker tracker(200.0);
  // 10 arrivals in second 0; 8 served within SLO, 2 violated.
  for (int i = 0; i < 10; ++i) tracker.record_arrival(i * 100.0);
  for (int i = 0; i < 8; ++i) tracker.record_completion(i * 100.0, i * 100.0 + 150.0);
  for (int i = 8; i < 10; ++i) tracker.record_completion(i * 100.0, i * 100.0 + 500.0);
  EXPECT_NEAR(tracker.arrival_rps(0.0, 1000.0), 10.0, 1e-9);
  EXPECT_NEAR(tracker.goodput_rps(0.0, 1000.0), 8.0, 1e-9);
}

TEST(SloTracker, GoodputAttributedToArrivalSecond) {
  SloTracker tracker(200.0);
  tracker.record_arrival(950.0);
  tracker.record_completion(950.0, 1100.0);  // completes in the next second
  EXPECT_NEAR(tracker.goodput_rps(0.0, 1000.0), 1.0, 1e-9);
  EXPECT_NEAR(tracker.goodput_rps(1000.0, 2000.0), 0.0, 1e-9);
}

TEST(SloTracker, RatesOverEmptyOrInvertedWindowAreZero) {
  SloTracker tracker(200.0);
  EXPECT_EQ(tracker.goodput_rps(0.0, 5000.0), 0.0);  // nothing recorded
  EXPECT_EQ(tracker.arrival_rps(0.0, 5000.0), 0.0);

  tracker.record_arrival(100.0);
  tracker.record_completion(100.0, 150.0);
  EXPECT_EQ(tracker.goodput_rps(1000.0, 1000.0), 0.0);  // zero-width
  EXPECT_EQ(tracker.arrival_rps(2000.0, 1000.0), 0.0);  // inverted
}

TEST(SloTracker, RatesBeyondTheLastBucketAreZero) {
  SloTracker tracker(200.0);
  tracker.record_arrival(500.0);
  tracker.record_completion(500.0, 600.0);
  // A window entirely past the last populated bucket must not read out of
  // range, and the rate denominator uses the requested span.
  EXPECT_EQ(tracker.arrival_rps(10'000.0, 20'000.0), 0.0);
  EXPECT_EQ(tracker.goodput_rps(10'000.0, 20'000.0), 0.0);
  // A window that starts inside and extends past the data still averages
  // over the full span asked for.
  EXPECT_NEAR(tracker.arrival_rps(0.0, 10'000.0), 0.1, 1e-9);
}

TEST(SloTracker, CompletionsStraddlingBucketBoundaries) {
  SloTracker tracker(200.0);
  // Arrivals in three consecutive seconds; the [start, end) window is
  // half-open, so a query ending exactly at a boundary excludes that bucket.
  tracker.record_arrival(999.9);
  tracker.record_arrival(1000.0);
  tracker.record_arrival(1999.9);
  for (const double t : {999.9, 1000.0, 1999.9}) {
    tracker.record_completion(t, t + 100.0);
  }
  EXPECT_NEAR(tracker.arrival_rps(0.0, 1000.0), 1.0, 1e-9);
  EXPECT_NEAR(tracker.arrival_rps(1000.0, 2000.0), 2.0, 1e-9);
  EXPECT_NEAR(tracker.arrival_rps(0.0, 2000.0), 1.5, 1e-9);
  EXPECT_NEAR(tracker.goodput_rps(1000.0, 2000.0), 2.0, 1e-9);
  // Negative start clamps to bucket zero.
  EXPECT_NEAR(tracker.arrival_rps(-1000.0, 1000.0), 0.5, 1e-9);
}

TEST(SloTracker, ViolationCausesSumMatchesClassifiedCount) {
  SloTracker tracker(200.0);
  tracker.record_completion(0.0, 500.0);
  tracker.record_completion(0.0, 600.0);
  tracker.record_violation_cause(ViolationCause::kColdStart);
  tracker.record_violation_cause(ViolationCause::kMpsInterference);
  EXPECT_EQ(tracker.violations(), 2u);
  EXPECT_EQ(tracker.classified_violations(), 2u);
  EXPECT_EQ(tracker.violation_causes()[static_cast<int>(ViolationCause::kColdStart)],
            1u);
}

TEST(CostTracker, ReflectsClusterHoldings) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, Rng(1));
  CostTracker tracker(cluster);
  EXPECT_EQ(tracker.total(), 0.0);
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  simulator.run_until(hours(2));
  EXPECT_NEAR(tracker.total(), 1.5, 1e-9);
  const auto breakdown = tracker.breakdown();
  ASSERT_EQ(breakdown.size(), 1u);
  EXPECT_EQ(breakdown[0].type, hw::NodeType::kG3s_xlarge);
  EXPECT_NEAR(breakdown[0].cost, 1.5, 1e-9);
}

TEST(PowerTracker, IdleHeldNodeDrawsIdlePower) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, Rng(2));
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  PowerTracker tracker(simulator, cluster, 1000.0);
  tracker.arm(seconds(30));
  simulator.run_until(seconds(30));
  const hw::PowerModel model(cluster.catalog().spec(hw::NodeType::kG3s_xlarge));
  EXPECT_NEAR(tracker.average_power(), model.idle_power(), 2.0);
}

TEST(PowerTracker, UnheldNodesDoNotCount) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, Rng(3));
  PowerTracker tracker(simulator, cluster, 1000.0);
  tracker.arm(seconds(10));
  simulator.run_until(seconds(10));
  EXPECT_EQ(tracker.average_power(), 0.0);
}

TEST(UtilTracker, BusyNodeShowsUtilization) {
  sim::Simulator simulator;
  cluster::Cluster cluster(simulator, Rng(4));
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  auto& node = cluster.node(hw::NodeType::kG3s_xlarge);
  node.spawn_container(models::ModelId::kResNet50, true);

  UtilTracker tracker(simulator, cluster, 100.0);
  tracker.arm(seconds(20));
  // Keep the GPU busy for the first 10 of 20 seconds.
  for (int i = 0; i < 100; ++i) {
    simulator.schedule_at(i * 100.0, [&node] {
      cluster::ExecRequest request;
      request.model = models::ModelId::kResNet50;
      request.batch_size = 32;
      request.mode = cluster::ShareMode::kTemporal;
      request.on_complete = [](const cluster::ExecutionReport&) {};
      node.execute(std::move(request));
    });
  }
  simulator.run_until(seconds(20));
  EXPECT_NEAR(tracker.utilization(hw::NodeType::kG3s_xlarge), 0.5, 0.2);
  EXPECT_NEAR(tracker.gpu_utilization(),
              tracker.utilization(hw::NodeType::kG3s_xlarge), 1e-9);
  EXPECT_EQ(tracker.cpu_utilization(), 0.0);  // no CPU node held
}

TEST(RunMetrics, SummaryFormats) {
  RunMetrics metrics;
  metrics.scheme = "Paldia";
  metrics.slo_compliance = 0.995;
  metrics.p99_latency_ms = 180.0;
  const std::string summary = metrics.summary();
  EXPECT_NE(summary.find("Paldia"), std::string::npos);
  EXPECT_NE(summary.find("99.50%"), std::string::npos);
}

}  // namespace
}  // namespace paldia::telemetry
