#include "src/perfmodel/y_optimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia::perfmodel {
namespace {

TEST(YOptimizer, ZeroRequestsIsTriviallyFeasible) {
  YOptimizer optimizer(TmaxModel(0.2));
  const auto decision = optimizer.best_split({0, 64, 100.0, 0.5, 200.0});
  EXPECT_TRUE(decision.feasible);
  EXPECT_EQ(decision.y, 0);
  EXPECT_EQ(decision.t_max_ms, 0.0);
}

TEST(YOptimizer, LightLoadGoesAllSpatial) {
  YOptimizer optimizer(TmaxModel(0.2));
  // One batch, unsaturated: t_max = solo, y = 0.
  const auto decision = optimizer.best_split({64, 64, 100.0, 0.5, 200.0});
  EXPECT_EQ(decision.y, 0);
  EXPECT_NEAR(decision.t_max_ms, 100.0, 1e-9);
  EXPECT_TRUE(decision.feasible);
}

TEST(YOptimizer, MatchesExhaustiveSearch) {
  TmaxModel model(0.3);
  YOptimizer optimizer(model);
  const WorkloadPoint p{700, 64, 90.0, 0.6, 200.0};
  const auto decision = optimizer.best_split(p, /*max_probes=*/100'000);

  double best = 1e18;
  for (int y = 0; y <= p.n_requests; ++y) {
    best = std::min(best, model.t_max_ms(p, y));
  }
  EXPECT_NEAR(decision.t_max_ms, best, best * 0.02);
}

TEST(YOptimizer, InfeasibleWhenNothingFits) {
  YOptimizer optimizer(TmaxModel(0.2));
  // Massive demand on a slow device: no split meets the SLO.
  const auto decision = optimizer.best_split({10'000, 64, 150.0, 0.9, 200.0});
  EXPECT_FALSE(decision.feasible);
  EXPECT_GT(decision.t_max_ms, 200.0);
}

TEST(YOptimizer, PrefersHybridUnderHeavySaturation) {
  YOptimizer optimizer(TmaxModel(0.3));
  const auto decision = optimizer.best_split({1500, 64, 60.0, 0.7, 1e9});
  EXPECT_GT(decision.y, 0);
  EXPECT_LT(decision.y, 1500);
}

TEST(YOptimizer, SameResultWithAndWithoutPool) {
  TmaxModel model(0.25);
  ThreadPool pool(4);
  YOptimizer serial(model, nullptr);
  YOptimizer parallel(model, &pool);
  const WorkloadPoint p{2000, 64, 70.0, 0.65, 200.0};
  const auto a = serial.best_split(p);
  const auto b = parallel.best_split(p);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.t_max_ms, b.t_max_ms);
}

TEST(YOptimizer, NestedSweepInsidePoolTaskCompletes) {
  // The Algorithm 1 shape that used to deadlock: the candidate-node par_for
  // runs on the pool, and each task re-enters the same pool for its y-sweep.
  TmaxModel model(0.25);
  ThreadPool pool(4);
  YOptimizer optimizer(model, &pool);
  const WorkloadPoint p{8192, 64, 90.0, 0.65, 200.0};

  // The point must actually exercise a wide sweep (>= 64 candidate splits).
  const auto range = model.optimal_range(p);
  ASSERT_TRUE(range.has_value());
  ASSERT_GE(range->second - range->first + 1, 64);

  const auto serial = YOptimizer(model, nullptr).best_split(p);
  std::vector<SharingDecision> decisions(8);
  pool.parallel_for(decisions.size(),
                    [&](std::size_t i) { decisions[i] = optimizer.best_split(p); });
  for (const auto& decision : decisions) {
    EXPECT_EQ(decision.y, serial.y);
    EXPECT_EQ(decision.t_max_ms, serial.t_max_ms);
  }
}

TEST(YOptimizer, ProbeBudgetStillCoversRangeEnds) {
  YOptimizer optimizer(TmaxModel(0.3));
  const WorkloadPoint p{5000, 64, 60.0, 0.7, 1e9};
  const auto coarse = optimizer.best_split(p, /*max_probes=*/8);
  const auto fine = optimizer.best_split(p, /*max_probes=*/100'000);
  // Coarse probing may be slightly worse but must stay within a few percent
  // (the objective is piecewise smooth in y).
  EXPECT_LE(fine.t_max_ms, coarse.t_max_ms + 1e-9);
  EXPECT_LT(coarse.t_max_ms, fine.t_max_ms * 1.10);
}

TEST(YOptimizer, TieBreaksTowardLessQueueing) {
  // With FBR tiny, many y values give identical t_max = solo; pick y = 0.
  YOptimizer optimizer(TmaxModel(0.0));
  const auto decision = optimizer.best_split({64, 64, 100.0, 0.01, 1e9});
  EXPECT_EQ(decision.y, 0);
}

TEST(YOptimizer, FeasibilityThresholdExact) {
  YOptimizer optimizer(TmaxModel(0.0));
  // t_max = solo exactly equals SLO -> feasible (<=).
  const auto decision = optimizer.best_split({64, 64, 200.0, 0.5, 200.0});
  EXPECT_TRUE(decision.feasible);
}

// Parameterized consistency sweep: the chosen split is never worse than
// both pure strategies.
class SplitDominance
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(SplitDominance, BeatsOrMatchesPureStrategies) {
  const auto [n, fbr, beta] = GetParam();
  TmaxModel model(beta);
  YOptimizer optimizer(model);
  const WorkloadPoint p{n, 64, 80.0, fbr, 200.0};
  const auto decision = optimizer.best_split(p);
  EXPECT_LE(decision.t_max_ms, model.t_max_ms(p, 0) + 1e-9);
  EXPECT_LE(decision.t_max_ms, model.t_max_ms(p, n) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitDominance,
    ::testing::Combine(::testing::Values(32, 128, 512, 2048),
                       ::testing::Values(0.15, 0.4, 0.7, 0.95),
                       ::testing::Values(0.0, 0.2, 0.35)));

}  // namespace
}  // namespace paldia::perfmodel
