#include "src/perfmodel/tmax_model.hpp"

#include <gtest/gtest.h>

namespace paldia::perfmodel {
namespace {

WorkloadPoint point(int n, int bs, double solo, double fbr, double slo = 200.0) {
  return WorkloadPoint{n, bs, solo, fbr, slo};
}

TEST(TmaxModel, PureTemporalIsDrainTime) {
  TmaxModel model(0.0);
  // y = N = 256, BS = 64, Solo = 100 -> 4 batches back to back.
  EXPECT_NEAR(model.t_max_ms(point(256, 64, 100.0, 0.5), 256), 400.0, 1e-9);
}

TEST(TmaxModel, PureSpatialUnsaturated) {
  TmaxModel model(0.0);
  // One batch worth of requests, FBR 0.5: S = 0.5 <= 1, no stretch.
  EXPECT_NEAR(model.t_max_ms(point(64, 64, 100.0, 0.5), 0), 100.0, 1e-9);
}

TEST(TmaxModel, LiteralEquationOneSaturated) {
  TmaxModel model(0.0);  // beta = 0: the paper's literal Eq. 1
  // N = 256, BS = 64, FBR = 0.5, y = 0: S = 2 -> Solo * 2.
  EXPECT_NEAR(model.t_max_ms(point(256, 64, 100.0, 0.5), 0), 200.0, 1e-9);
  // y = 64: queued 100 * 64/64 = 100; spatial S = 1.5 -> 150. Total 250.
  EXPECT_NEAR(model.t_max_ms(point(256, 64, 100.0, 0.5), 64), 250.0, 1e-9);
}

TEST(TmaxModel, LiteralFormIsMonotoneInYWithinOptimalRange) {
  // Documented property: with beta = 0 and FBR < 1, T_max increases with y
  // throughout the paper's optimal range, so all-spatial is always
  // "optimal" under the literal Eq. 1 — the reason the calibrated beta
  // term exists (see tmax_model.hpp). Beyond the range, the pure-temporal
  // endpoint drops the concurrent term and is discontinuous, so the sweep
  // stops at the range edge.
  TmaxModel model(0.0);
  const auto p = point(512, 64, 100.0, 0.5);
  const auto range = model.optimal_range(p);
  ASSERT_TRUE(range.has_value());
  double previous = -1.0;
  for (int y = range->first; y <= range->second; y += 16) {
    const double t = model.t_max_ms(p, y);
    EXPECT_GE(t, previous);
    previous = t;
  }
}

TEST(TmaxModel, CalibratedFormHasInteriorOptimum) {
  TmaxModel model(0.3);
  const auto p = point(1024, 64, 100.0, 0.6);
  const double all_spatial = model.t_max_ms(p, 0);
  const double all_temporal = model.t_max_ms(p, p.n_requests);
  double best = all_spatial;
  int best_y = 0;
  for (int y = 0; y <= p.n_requests; y += 16) {
    const double t = model.t_max_ms(p, y);
    if (t < best) {
      best = t;
      best_y = y;
    }
  }
  EXPECT_LT(best, all_spatial);
  EXPECT_LT(best, all_temporal);
  EXPECT_GT(best_y, 0);
  EXPECT_LT(best_y, p.n_requests);
}

TEST(TmaxModel, StretchFormula) {
  TmaxModel model(0.25);
  EXPECT_DOUBLE_EQ(model.stretch(0.3), 1.0);
  EXPECT_DOUBLE_EQ(model.stretch(1.0), 1.0);
  EXPECT_DOUBLE_EQ(model.stretch(2.0), 2.0 * (1.0 + 0.25));
}

TEST(TmaxModel, FbrSum) {
  TmaxModel model;
  const auto p = point(128, 64, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(model.fbr_sum(p, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.fbr_sum(p, 64), 0.5);
  EXPECT_DOUBLE_EQ(model.fbr_sum(p, 128), 0.0);
}

TEST(TmaxModel, OptimalRangeConstraints) {
  TmaxModel model;
  // Constraint (ii): y < N - BS/FBR. N = 256, BS = 64, FBR = 0.5 -> y < 128.
  const auto range = model.optimal_range(point(256, 64, 100.0, 0.5));
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 0);
  EXPECT_EQ(range->second, 127);
}

TEST(TmaxModel, OptimalRangeEmptyWhenUnsaturatedEverywhere) {
  TmaxModel model;
  // N = 64, BS = 64, FBR = 0.5: even y = 0 gives S = 0.5 <= 1.
  EXPECT_FALSE(model.optimal_range(point(64, 64, 100.0, 0.5)).has_value());
}

TEST(TmaxModel, OptimalRangeRespectsYLessThanN) {
  TmaxModel model;
  // Tiny BS/FBR: the (ii) bound exceeds N; (i) must clamp to N - 1.
  const auto range = model.optimal_range(point(10, 1, 10.0, 0.9));
  ASSERT_TRUE(range.has_value());
  EXPECT_LE(range->second, 9);
}

TEST(TmaxModel, DegenerateInputs) {
  TmaxModel model;
  EXPECT_FALSE(model.optimal_range(point(0, 64, 100.0, 0.5)).has_value());
  EXPECT_FALSE(model.optimal_range(point(100, 64, 100.0, 0.0)).has_value());
  EXPECT_EQ(model.t_max_ms(point(0, 64, 100.0, 0.5), 0), 0.0);
}

TEST(TmaxModel, YClampedIntoValidRange) {
  TmaxModel model(0.0);
  const auto p = point(100, 64, 100.0, 0.5);
  EXPECT_DOUBLE_EQ(model.t_max_ms(p, -5), model.t_max_ms(p, 0));
  EXPECT_DOUBLE_EQ(model.t_max_ms(p, 1000), model.t_max_ms(p, 100));
}

// Property sweep: T_max(y) must always be >= the queued drain component and
// >= Solo, for any parameters.
class TmaxBounds
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(TmaxBounds, LowerBounds) {
  const auto [n, fbr, beta] = GetParam();
  TmaxModel model(beta);
  const auto p = point(n, 64, 80.0, fbr);
  for (int y = 0; y <= n; y += std::max(1, n / 17)) {
    const double t = model.t_max_ms(p, y);
    EXPECT_GE(t, p.solo_ms * y / p.batch_size - 1e-9);
    if (y < n) EXPECT_GE(t, p.solo_ms - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TmaxBounds,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(0.2, 0.5, 0.9),
                       ::testing::Values(0.0, 0.2, 0.4)));

// The analytic lower bound used by the pruned candidate sweep: for every y
// in [0, N], t_max_lower_bound(point) <= t_max_ms(point, y). The pruning
// exactness proof leans on exactly this inequality, so it gets the full
// parameter sweep — including compute-bound points and nonzero beta.
class TmaxLowerBound
    : public ::testing::TestWithParam<std::tuple<int, double, double, double>> {
};

TEST_P(TmaxLowerBound, BelowEveryY) {
  const auto [n, fbr, compute, beta] = GetParam();
  TmaxModel model(beta);
  for (int bs : {1, 16, 64}) {
    WorkloadPoint p{n, bs, 80.0, fbr, 200.0, compute};
    const double bound = model.t_max_lower_bound(p);
    for (int y = 0; y <= n; y += std::max(1, n / 37)) {
      EXPECT_LE(bound, model.t_max_ms(p, y) + 1e-9)
          << "n=" << n << " bs=" << bs << " fbr=" << fbr
          << " compute=" << compute << " beta=" << beta << " y=" << y;
    }
    EXPECT_LE(bound, model.t_max_ms(p, n) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TmaxLowerBound,
    ::testing::Combine(::testing::Values(1, 7, 64, 256, 1024),
                       ::testing::Values(0.1, 0.5, 0.9, 1.4),
                       ::testing::Values(0.0, 0.3, 1.1),
                       ::testing::Values(0.0, 0.2, 0.4)));

// Monotone in N (under bs = min(max_batch, N)): the node-level bound at the
// fixed point's floor n_lb stays below the bound at any larger N — the
// other half of the pruning proof.
TEST(TmaxModel, LowerBoundMonotoneInN) {
  TmaxModel model(0.2);
  for (double fbr : {0.2, 0.7, 1.3}) {
    double previous = 0.0;
    for (int n = 1; n <= 2048; n = n * 2 + 1) {
      WorkloadPoint p{n, std::min(64, n), 80.0, fbr, 200.0, 0.4};
      const double bound = model.t_max_lower_bound(p);
      EXPECT_GE(bound, previous - 1e-9) << "fbr=" << fbr << " n=" << n;
      previous = bound;
    }
  }
}

}  // namespace
}  // namespace paldia::perfmodel
