// Model-vs-ground-truth validation: the scheduler's closed-form T_max
// (perfmodel) must track what the simulated GPU actually does, within the
// error band the paper reports for its own model (<4% for the queued-
// portion approximation; we allow a slightly wider envelope end to end
// because the device adds launch overhead and jitter).
#include <gtest/gtest.h>

#include "src/cluster/gpu_device.hpp"
#include "src/hw/catalog.hpp"
#include "src/models/profile.hpp"
#include "src/models/zoo.hpp"
#include "src/perfmodel/y_optimizer.hpp"
#include "src/sim/simulator.hpp"

namespace paldia {
namespace {

struct DeviceRun {
  double last_completion_ms = 0.0;
};

// Execute the hybrid split (y queued, N - y spatial) on a fresh device and
// return the completion time of the last request batch.
DeviceRun run_split(const models::ModelSpec& model, const hw::GpuSpec& gpu, int n,
                    int batch_size, int y, std::uint64_t seed) {
  sim::Simulator simulator;
  cluster::GpuDeviceConfig config;
  config.jitter_sigma = 0.0;
  config.launch_overhead_ms = 0.0;
  cluster::GpuDevice device(simulator, gpu, Rng(seed), config);

  const double solo = models::gpu_solo_ms(model, gpu, batch_size);
  const double fbr = models::gpu_fbr(model, gpu, batch_size);

  DeviceRun run;
  auto record = [&run](const cluster::ExecutionReport& report) {
    run.last_completion_ms = std::max(run.last_completion_ms, report.end_ms);
  };
  const int spatial = n - y;
  const int spatial_batches = (spatial + batch_size - 1) / batch_size;
  const int serial_batches = (y + batch_size - 1) / batch_size;
  for (int i = 0; i < spatial_batches; ++i) {
    cluster::GpuJob job;
    job.solo_ms = solo;
    job.fbr = fbr;
    job.on_complete = record;
    device.submit_spatial(std::move(job));
  }
  for (int i = 0; i < serial_batches; ++i) {
    cluster::GpuJob job;
    job.solo_ms = solo;
    job.fbr = fbr;
    job.on_complete = record;
    device.submit_serial(std::move(job));
  }
  simulator.run_to_completion();
  return run;
}

class ModelVsDevice
    : public ::testing::TestWithParam<std::tuple<hw::NodeType, int, double>> {};

TEST_P(ModelVsDevice, TmaxTracksDeviceWithinBand) {
  const auto [node, n, y_fraction] = GetParam();
  const auto& model = models::Zoo::instance().spec(models::ModelId::kResNet50);
  const auto& gpu = *hw::Catalog::instance().spec(node).gpu;
  const int bs = model.max_batch;
  const int y = static_cast<int>(y_fraction * n);

  perfmodel::TmaxModel tmax(cluster::GpuDeviceConfig{}.beta);
  const double solo = models::gpu_solo_ms(model, gpu, bs);
  const double fbr = models::gpu_fbr(model, gpu, bs);
  const double predicted =
      tmax.t_max_ms({n, bs, solo, fbr, 1e9}, y);

  const auto run = run_split(model, gpu, n, bs, y, 77);

  // The model's queued+concurrent sum is an upper-bound-flavoured
  // approximation of the device, which overlaps the two lanes. Accept
  // device <= predicted * 1.10 and device >= predicted * 0.55 (the overlap
  // can save up to the smaller lane's duration).
  EXPECT_LE(run.last_completion_ms, predicted * 1.10)
      << "n=" << n << " y=" << y << " predicted=" << predicted;
  EXPECT_GE(run.last_completion_ms, predicted * 0.55)
      << "n=" << n << " y=" << y << " predicted=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelVsDevice,
    ::testing::Combine(::testing::Values(hw::NodeType::kP3_2xlarge,
                                         hw::NodeType::kG3s_xlarge),
                       ::testing::Values(64, 256, 512),
                       ::testing::Values(0.0, 0.25, 0.5)));

TEST(ModelVsDevice, PureSpatialErrorSmall) {
  // With no queueing the model should be tight (this is Prophet's regime).
  const auto& model = models::Zoo::instance().spec(models::ModelId::kDenseNet121);
  const auto& gpu = *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
  const int bs = model.max_batch;
  for (int n : {128, 256, 384}) {
    perfmodel::TmaxModel tmax(cluster::GpuDeviceConfig{}.beta);
    const double solo = models::gpu_solo_ms(model, gpu, bs);
    const double fbr = models::gpu_fbr(model, gpu, bs);
    const double predicted = tmax.t_max_ms({n, bs, solo, fbr, 1e9}, 0);
    const auto run = run_split(model, gpu, n, bs, 0, 13);
    EXPECT_NEAR(run.last_completion_ms, predicted, predicted * 0.04)
        << "n=" << n;  // the paper's <4% band
  }
}

TEST(ModelVsDevice, PureTemporalErrorSmall) {
  const auto& model = models::Zoo::instance().spec(models::ModelId::kVgg19);
  const auto& gpu = *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
  const int bs = model.max_batch;
  const int n = bs * 5;
  perfmodel::TmaxModel tmax(cluster::GpuDeviceConfig{}.beta);
  const double solo = models::gpu_solo_ms(model, gpu, bs);
  const double fbr = models::gpu_fbr(model, gpu, bs);
  const double predicted = tmax.t_max_ms({n, bs, solo, fbr, 1e9}, n);
  const auto run = run_split(model, gpu, n, bs, n, 29);
  EXPECT_NEAR(run.last_completion_ms, predicted, predicted * 0.04);
}

TEST(ModelVsDevice, OptimizerChoiceBeatsPureStrategiesOnDevice) {
  // End-to-end sanity of the whole Section III premise: the y the
  // optimizer picks yields a device-measured completion no worse than
  // all-spatial and all-temporal.
  const auto& model = models::Zoo::instance().spec(models::ModelId::kResNet50);
  const auto& gpu = *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
  const int bs = model.max_batch;
  const int n = 1024;
  const double solo = models::gpu_solo_ms(model, gpu, bs);
  const double fbr = models::gpu_fbr(model, gpu, bs);
  perfmodel::YOptimizer optimizer(
      perfmodel::TmaxModel(cluster::GpuDeviceConfig{}.beta));
  const auto decision = optimizer.best_split({n, bs, solo, fbr, 1e9});

  const double hybrid = run_split(model, gpu, n, bs, decision.y, 5).last_completion_ms;
  const double all_spatial = run_split(model, gpu, n, bs, 0, 5).last_completion_ms;
  const double all_temporal = run_split(model, gpu, n, bs, n, 5).last_completion_ms;
  EXPECT_LE(hybrid, all_spatial * 1.02);
  EXPECT_LE(hybrid, all_temporal * 1.02);
}

}  // namespace
}  // namespace paldia
