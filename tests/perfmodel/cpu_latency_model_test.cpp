#include "src/perfmodel/cpu_latency_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/models/zoo.hpp"

namespace paldia::perfmodel {
namespace {

const models::ModelSpec& resnet50() {
  return models::Zoo::instance().spec(models::ModelId::kResNet50);
}
const models::ModelSpec& bert() {
  return models::Zoo::instance().spec(models::ModelId::kBert);
}

TEST(CpuTmax, ZeroRequestsFeasible) {
  models::ProfileTable table;
  const auto estimate =
      approx_cpu_t_max(resnet50(), table, hw::NodeType::kC6i_4xlarge, 0, 200.0);
  EXPECT_TRUE(estimate.feasible);
  EXPECT_EQ(estimate.t_max_ms, 0.0);
}

TEST(CpuTmax, SmallLoadFeasibleOnBigCpu) {
  models::ProfileTable table;
  const auto estimate =
      approx_cpu_t_max(resnet50(), table, hw::NodeType::kC6i_4xlarge, 3, 200.0);
  EXPECT_TRUE(estimate.feasible);
  EXPECT_GT(estimate.batch_size, 0);
  EXPECT_LE(estimate.t_max_ms, 200.0);
}

TEST(CpuTmax, LargeLoadInfeasible) {
  models::ProfileTable table;
  const auto estimate =
      approx_cpu_t_max(resnet50(), table, hw::NodeType::kC6i_4xlarge, 200, 200.0);
  EXPECT_FALSE(estimate.feasible);
  EXPECT_GT(estimate.t_max_ms, 200.0);
}

TEST(CpuTmax, HeavyModelInfeasibleEvenAlone) {
  models::ProfileTable table;
  // BERT single request on the 2-vCPU m4.xlarge exceeds the SLO by itself.
  const auto estimate =
      approx_cpu_t_max(bert(), table, hw::NodeType::kM4_xlarge, 1, 200.0);
  EXPECT_FALSE(estimate.feasible);
  EXPECT_EQ(estimate.batch_size, 1);
}

TEST(CpuTmax, DrainTimeMatchesBatchArithmetic) {
  models::ProfileTable table;
  const auto estimate =
      approx_cpu_t_max(resnet50(), table, hw::NodeType::kC6i_4xlarge, 10, 500.0);
  const double solo =
      table.lookup(resnet50(), hw::NodeType::kC6i_4xlarge, estimate.batch_size).solo_ms;
  const double batches = std::ceil(10.0 / estimate.batch_size);
  EXPECT_NEAR(estimate.t_max_ms, batches * solo, 1e-9);
}

TEST(CpuSteadyState, ZeroRateTrivial) {
  models::ProfileTable table;
  const auto state =
      cpu_steady_state(resnet50(), table, hw::NodeType::kC6i_4xlarge, 0.0, 200.0);
  EXPECT_TRUE(state.feasible);
}

TEST(CpuSteadyState, ModerateRateFeasible) {
  models::ProfileTable table;
  const auto state =
      cpu_steady_state(resnet50(), table, hw::NodeType::kC6i_4xlarge, 15.0, 200.0);
  EXPECT_TRUE(state.feasible);
  EXPECT_LT(state.utilization, 0.85);
  EXPECT_LE(state.latency_ms, 200.0);
}

TEST(CpuSteadyState, PaperCpuCeilingNear25Rps) {
  // Section IV-A: "up to ~25 rps for workloads with high FBRs" on CPU
  // nodes. ResNet 50 on the best CPU node must flip infeasible somewhere
  // in the 20-40 rps band.
  models::ProfileTable table;
  Rps ceiling = 0.0;
  for (Rps rate = 5.0; rate <= 60.0; rate += 1.0) {
    const auto state =
        cpu_steady_state(resnet50(), table, hw::NodeType::kC6i_4xlarge, rate, 200.0);
    if (state.feasible) ceiling = rate;
  }
  EXPECT_GE(ceiling, 18.0);
  EXPECT_LE(ceiling, 42.0);
}

TEST(CpuSteadyState, SaturationIsInfeasibleDespiteShortBatches) {
  models::ProfileTable table;
  const auto state =
      cpu_steady_state(resnet50(), table, hw::NodeType::kC6i_2xlarge, 40.0, 200.0);
  EXPECT_FALSE(state.feasible);
  EXPECT_FALSE(std::isfinite(state.latency_ms) && state.latency_ms <= 200.0);
}

TEST(CpuSteadyState, LatencyGrowsWithRate) {
  models::ProfileTable table;
  double previous = 0.0;
  for (Rps rate : {2.0, 8.0, 14.0, 20.0}) {
    const auto state =
        cpu_steady_state(resnet50(), table, hw::NodeType::kC6i_4xlarge, rate, 500.0);
    ASSERT_TRUE(std::isfinite(state.latency_ms));
    EXPECT_GE(state.latency_ms, previous * 0.8);  // roughly increasing
    previous = state.latency_ms;
  }
}

TEST(CpuSteadyState, InfeasibleWhenSingleRequestBustsSlo) {
  models::ProfileTable table;
  const auto state =
      cpu_steady_state(bert(), table, hw::NodeType::kM4_xlarge, 1.0, 200.0);
  EXPECT_FALSE(state.feasible);
}

}  // namespace
}  // namespace paldia::perfmodel
