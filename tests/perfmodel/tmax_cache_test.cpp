#include "src/perfmodel/tmax_cache.hpp"

#include <gtest/gtest.h>

#include "src/perfmodel/y_optimizer.hpp"

namespace paldia::perfmodel {
namespace {

WorkloadPoint saturated_point(int n) {
  WorkloadPoint point;
  point.n_requests = n;
  point.batch_size = 8;
  point.solo_ms = 40.0;
  point.fbr = 0.12;
  point.slo_ms = 200.0;
  point.compute = 0.1;
  return point;
}

TmaxCache::Key key_for(const WorkloadPoint& point,
                       int max_probes = kDefaultSweepProbes) {
  TmaxCache::Key key;
  key.model = 1;
  key.node = 2;
  key.n_requests = point.n_requests;
  key.slo_q = TmaxCache::quantize_slo(point.slo_ms);
  key.max_probes = max_probes;
  return key;
}

TEST(TmaxCache, FirstLookupMissesSecondHits) {
  YOptimizer optimizer{TmaxModel(0.2)};
  TmaxCache cache;
  const auto point = saturated_point(32);
  const auto key = key_for(point);

  const auto first = cache.best_split(optimizer, key, point, kDefaultSweepProbes);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);

  const auto second = cache.best_split(optimizer, key, point, kDefaultSweepProbes);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);

  EXPECT_EQ(second.y, first.y);
  EXPECT_EQ(second.t_max_ms, first.t_max_ms);  // bit-identical, not near
  EXPECT_EQ(second.feasible, first.feasible);
}

TEST(TmaxCache, CachedDecisionMatchesDirectSweep) {
  YOptimizer optimizer{TmaxModel(0.2)};
  TmaxCache cache;
  for (const int n : {1, 4, 16, 32, 64, 100}) {
    const auto point = saturated_point(n);
    const auto direct = optimizer.best_split(point);
    // Twice: the miss path and the hit path must both reproduce it.
    for (int round = 0; round < 2; ++round) {
      const auto cached =
          cache.best_split(optimizer, key_for(point), point, kDefaultSweepProbes);
      EXPECT_EQ(cached.y, direct.y) << "n=" << n;
      EXPECT_EQ(cached.t_max_ms, direct.t_max_ms) << "n=" << n;
      EXPECT_EQ(cached.feasible, direct.feasible) << "n=" << n;
    }
  }
}

TEST(TmaxCache, DistinctKeysDoNotCollide) {
  YOptimizer optimizer{TmaxModel(0.2)};
  TmaxCache cache;
  const auto point = saturated_point(32);
  auto key = key_for(point);
  cache.best_split(optimizer, key, point, kDefaultSweepProbes);

  // Varying any key field is a fresh entry, not a hit.
  auto other_node = key;
  other_node.node = 3;
  cache.best_split(optimizer, other_node, point, kDefaultSweepProbes);
  auto other_n = key;
  other_n.n_requests = 33;
  auto bigger = point;
  bigger.n_requests = 33;
  cache.best_split(optimizer, other_n, bigger, kDefaultSweepProbes);

  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(TmaxCache, BypassCountsAndPopulatesButRecomputes) {
  // Bypass mode must look exactly like cached mode from the outside:
  // identical decisions, identical hit/miss totals, identical map growth.
  YOptimizer optimizer{TmaxModel(0.2)};
  TmaxCache cached{/*bypass=*/false};
  TmaxCache bypass{/*bypass=*/true};
  EXPECT_FALSE(cached.bypass());
  EXPECT_TRUE(bypass.bypass());

  for (const int n : {8, 8, 24, 8, 24, 40}) {
    const auto point = saturated_point(n);
    const auto from_cache =
        cached.best_split(optimizer, key_for(point), point, kDefaultSweepProbes);
    const auto from_bypass =
        bypass.best_split(optimizer, key_for(point), point, kDefaultSweepProbes);
    EXPECT_EQ(from_cache.y, from_bypass.y) << "n=" << n;
    EXPECT_EQ(from_cache.t_max_ms, from_bypass.t_max_ms) << "n=" << n;
    EXPECT_EQ(from_cache.feasible, from_bypass.feasible) << "n=" << n;
  }
  EXPECT_EQ(cached.stats().hits, bypass.stats().hits);
  EXPECT_EQ(cached.stats().misses, bypass.stats().misses);
  EXPECT_EQ(cached.size(), bypass.size());
  EXPECT_EQ(cached.stats().hits, 3u);  // the three repeats
  EXPECT_EQ(cached.stats().misses, 3u);
}

TEST(TmaxCache, FeasibilityRecomputedFromUnquantizedSlo) {
  // Two SLOs that quantize to the same grid cell but straddle the computed
  // t_max must get different feasibility verdicts from the same cache
  // entry: (y, t_max) is shared, the verdict is not stored.
  YOptimizer optimizer{TmaxModel(0.2)};
  TmaxCache cache;
  auto point = saturated_point(32);
  const auto direct = optimizer.best_split(point);
  ASSERT_GT(direct.t_max_ms, 0.0);

  // Pin the SLO to t_max ± half a grid step: same slo_q, opposite verdicts.
  const double grid = 1.0 / 1024.0;
  const double base =
      static_cast<double>(TmaxCache::quantize_slo(direct.t_max_ms)) * grid;
  auto tight = point;
  tight.slo_ms = base - 0.25 * grid;
  auto loose = point;
  loose.slo_ms = base + 0.25 * grid;
  const auto key = key_for(tight);
  ASSERT_EQ(key.slo_q, key_for(loose).slo_q);

  const auto first = cache.best_split(optimizer, key, tight, kDefaultSweepProbes);
  const auto second = cache.best_split(optimizer, key, loose, kDefaultSweepProbes);
  EXPECT_EQ(cache.stats().hits, 1u);  // same key: second lookup hits
  EXPECT_EQ(first.t_max_ms, second.t_max_ms);
  EXPECT_EQ(first.feasible, first.t_max_ms <= tight.slo_ms);
  EXPECT_EQ(second.feasible, second.t_max_ms <= loose.slo_ms);
}

TEST(TmaxCache, QuantizeSloGrid) {
  EXPECT_EQ(TmaxCache::quantize_slo(0.0), 0);
  EXPECT_EQ(TmaxCache::quantize_slo(1.0), 1024);
  EXPECT_EQ(TmaxCache::quantize_slo(200.0), 200 * 1024);
  // Round-to-nearest on the grid, not truncation.
  EXPECT_EQ(TmaxCache::quantize_slo(1.0 / 2048.0 + 1e-9), 1);
}

}  // namespace
}  // namespace paldia::perfmodel
