#include "src/cluster/node.hpp"

#include <gtest/gtest.h>

namespace paldia::cluster {
namespace {

constexpr auto kModel = models::ModelId::kResNet50;

ExecRequest request(int bs, ShareMode mode, ExecutionReport* out) {
  ExecRequest r;
  r.model = kModel;
  r.batch_size = bs;
  r.mode = mode;
  r.on_complete = [out](const ExecutionReport& report) { *out = report; };
  return r;
}

TEST(Node, SpawnedContainerBecomesWarmAfterColdStart) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(1));
  node.spawn_container(kModel);
  EXPECT_EQ(node.warm_idle_container_count(kModel), 0);
  simulator.run_to_completion();
  EXPECT_EQ(node.warm_idle_container_count(kModel), 1);
  EXPECT_EQ(node.cold_starts(), 1u);
}

TEST(Node, PrewarmedContainerIsImmediatelyWarm) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(2));
  node.spawn_container(kModel, /*prewarmed=*/true);
  EXPECT_EQ(node.warm_idle_container_count(kModel), 1);
  EXPECT_EQ(node.cold_starts(), 0u);
}

TEST(Node, SpatialBatchNeedsDedicatedContainer) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(3));
  node.spawn_container(kModel, true);
  ExecutionReport a, b;
  node.execute(request(32, ShareMode::kSpatial, &a));
  node.execute(request(32, ShareMode::kSpatial, &b));
  // Only one container: the second batch waits.
  EXPECT_EQ(node.container_wait_queue_length(), 1);
  simulator.run_to_completion();
  EXPECT_GT(b.start_ms, a.end_ms - 1e-6);
  EXPECT_GT(b.queue_ms(), 0.0);
}

TEST(Node, TwoContainersRunSpatialBatchesConcurrently) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(4));
  node.spawn_container(kModel, true);
  node.spawn_container(kModel, true);
  ExecutionReport a, b;
  node.execute(request(32, ShareMode::kSpatial, &a));
  node.execute(request(32, ShareMode::kSpatial, &b));
  EXPECT_EQ(node.container_wait_queue_length(), 0);
  simulator.run_to_completion();
  EXPECT_NEAR(a.start_ms, b.start_ms, 1e-6);
}

TEST(Node, TemporalBatchesReuseOneWarmContainer) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(5));
  node.spawn_container(kModel, true);
  ExecutionReport a, b;
  node.execute(request(32, ShareMode::kTemporal, &a));
  node.execute(request(32, ShareMode::kTemporal, &b));
  EXPECT_EQ(node.container_wait_queue_length(), 0);  // both accepted
  simulator.run_to_completion();
  EXPECT_FALSE(a.failed);
  EXPECT_FALSE(b.failed);
  EXPECT_GE(b.start_ms, a.end_ms - 1e-6);  // device serialises them
}

TEST(Node, ColdStartChargedToFirstBatch) {
  sim::Simulator simulator;
  NodeConfig config;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(6),
            models::Zoo::instance(), hw::Catalog::instance(), config);
  ExecutionReport report;
  // No container exists; temporal path spawns one and waits for it.
  node.execute(request(16, ShareMode::kTemporal, &report));
  simulator.run_to_completion();
  EXPECT_FALSE(report.failed);
  EXPECT_NEAR(report.cold_start_ms, config.gpu_cold_start_ms, 50.0);
  EXPECT_GE(report.start_ms, config.gpu_cold_start_ms - 1e-6);
}

TEST(Node, CpuNodeUsesBatchedCpuMode) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kC6i_4xlarge, Rng(7));
  node.spawn_container(kModel, true);
  ExecutionReport report;
  node.execute(request(4, ShareMode::kCpu, &report));
  simulator.run_to_completion();
  EXPECT_FALSE(report.failed);
  const auto expected =
      node.profile().lookup(models::Zoo::instance().spec(kModel),
                            hw::NodeType::kC6i_4xlarge, 4).solo_ms;
  EXPECT_NEAR(report.end_ms - report.start_ms, expected, expected * 0.15);
}

TEST(Node, FailureFailsEverythingAndKillsContainers) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(8));
  node.spawn_container(kModel, true);
  ExecutionReport running, waiting;
  node.execute(request(32, ShareMode::kSpatial, &running));
  node.execute(request(32, ShareMode::kSpatial, &waiting));
  node.fail();
  EXPECT_FALSE(node.is_up());
  EXPECT_TRUE(running.failed);
  EXPECT_TRUE(waiting.failed);
  EXPECT_EQ(node.container_count(kModel), 0);
  node.recover();
  EXPECT_TRUE(node.is_up());
}

TEST(Node, TerminateIdleContainer) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(9));
  node.spawn_container(kModel, true);
  node.spawn_container(kModel, true);
  EXPECT_TRUE(node.terminate_idle_container(kModel));
  EXPECT_EQ(node.container_count(kModel), 1);
  EXPECT_TRUE(node.terminate_idle_container(kModel));
  EXPECT_FALSE(node.terminate_idle_container(kModel));
}

TEST(Node, IdleSinceCount) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(10));
  node.spawn_container(kModel, true);
  simulator.run_until(1000.0);
  EXPECT_EQ(node.idle_since_count(kModel, 500.0), 1);
  EXPECT_EQ(node.idle_since_count(kModel, -1.0), 0);
}

TEST(Node, GpuInterferenceFactorStretchesWork) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(11));
  node.spawn_container(kModel, true);
  node.set_host_interference(1.0, 1.5);
  ExecutionReport report;
  node.execute(request(32, ShareMode::kSpatial, &report));
  simulator.run_to_completion();
  const auto base =
      node.profile().lookup(models::Zoo::instance().spec(kModel),
                            hw::NodeType::kG3s_xlarge, 32).solo_ms;
  EXPECT_GT(report.end_ms - report.start_ms, base * 1.3);
}

TEST(Node, PerModelContainerIsolation) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kG3s_xlarge, Rng(12));
  node.spawn_container(models::ModelId::kResNet50, true);
  EXPECT_EQ(node.container_count(models::ModelId::kResNet50), 1);
  EXPECT_EQ(node.container_count(models::ModelId::kVgg19), 0);
  EXPECT_FALSE(node.terminate_idle_container(models::ModelId::kVgg19));
}

}  // namespace
}  // namespace paldia::cluster
