// Regression coverage for the failure injector's window tracking: the
// original implementation scheduled recovery blindly downtime_ms after each
// failure, so (a) downtime >= period interleaved fail/recover pairs out of
// order — a later recovery revived a node that a newer failure should have
// kept down — and (b) a recovery landing past the armed horizon never
// fired, ending the run with the node down.
#include "src/cluster/failure_injector.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/sim/simulator.hpp"

namespace paldia::cluster {
namespace {

struct Harness {
  sim::Simulator simulator;
  std::vector<TimeMs> failures;
  std::vector<TimeMs> recoveries;
  FailureInjector injector;

  explicit Harness(FailureInjectorConfig config)
      : injector(
            simulator, config,
            [this] { failures.push_back(simulator.now()); },
            [this] { recoveries.push_back(simulator.now()); }) {}
};

TEST(FailureInjector, AlternatesWhenDowntimeBelowPeriod) {
  Harness h(FailureInjectorConfig{
      .period_ms = 10'000.0, .downtime_ms = 4'000.0, .first_failure_ms = 5'000.0});
  h.injector.arm(40'000.0);
  h.simulator.run_until(40'000.0);
  EXPECT_EQ(h.failures, (std::vector<TimeMs>{5'000.0, 15'000.0, 25'000.0, 35'000.0}));
  EXPECT_EQ(h.recoveries,
            (std::vector<TimeMs>{9'000.0, 19'000.0, 29'000.0, 39'000.0}));
  EXPECT_EQ(h.injector.failures_injected(), 4);
  EXPECT_EQ(h.injector.recoveries_delivered(), 4);
  EXPECT_FALSE(h.injector.down());
}

TEST(FailureInjector, CoalescesOverlappingFailuresIntoOneWindow) {
  // downtime > period: every failure point after the first lands inside the
  // previous outage. The whole run must collapse into a single window
  // [first_failure, end] — one on_fail, one on_recover, never an
  // interleaved revive.
  Harness h(FailureInjectorConfig{
      .period_ms = 10'000.0, .downtime_ms = 25'000.0, .first_failure_ms = 5'000.0});
  h.injector.arm(60'000.0);
  h.simulator.run_until(60'000.0);
  EXPECT_EQ(h.failures, (std::vector<TimeMs>{5'000.0}));
  EXPECT_EQ(h.recoveries, (std::vector<TimeMs>{60'000.0}));
  EXPECT_EQ(h.injector.failures_injected(), 1);
  EXPECT_EQ(h.injector.recoveries_delivered(), 1);
  EXPECT_FALSE(h.injector.down());
}

TEST(FailureInjector, DowntimeEqualToPeriodStaysOrdered) {
  // Boundary shape: the recovery and the next failure point share a
  // timestamp. The recovery was scheduled first, so it fires first — the
  // node flaps down/up/down with no out-of-order pair.
  Harness h(FailureInjectorConfig{
      .period_ms = 10'000.0, .downtime_ms = 10'000.0, .first_failure_ms = 5'000.0});
  h.injector.arm(35'000.0);
  h.simulator.run_until(35'000.0);
  EXPECT_EQ(h.failures, (std::vector<TimeMs>{5'000.0, 15'000.0, 25'000.0}));
  EXPECT_EQ(h.recoveries, (std::vector<TimeMs>{15'000.0, 25'000.0, 35'000.0}));
  EXPECT_FALSE(h.injector.down());
}

TEST(FailureInjector, FinalRecoveryClampedToHorizon) {
  // A recovery that would land past end_ms_ is clamped to it, so the node
  // never finishes the run down.
  Harness h(FailureInjectorConfig{
      .period_ms = 20'000.0, .downtime_ms = 15'000.0, .first_failure_ms = 50'000.0});
  h.injector.arm(60'000.0);
  h.simulator.run_until(60'000.0);
  EXPECT_EQ(h.failures, (std::vector<TimeMs>{50'000.0}));
  EXPECT_EQ(h.recoveries, (std::vector<TimeMs>{60'000.0}));
  EXPECT_FALSE(h.injector.down());
}

TEST(FailureInjector, NoFailuresWhenFirstPointPastHorizon) {
  Harness h(FailureInjectorConfig{
      .period_ms = 10'000.0, .downtime_ms = 4'000.0, .first_failure_ms = 90'000.0});
  h.injector.arm(60'000.0);
  h.simulator.run_until(60'000.0);
  EXPECT_TRUE(h.failures.empty());
  EXPECT_TRUE(h.recoveries.empty());
  EXPECT_EQ(h.injector.failures_injected(), 0);
}

TEST(FailureInjector, CoalescedWindowsMatchUnderSharding) {
  // The injector lives on the control shard; its fail/recover callbacks
  // must land identically under the sharded drain.
  for (const int shards : {1, 4}) {
    sim::ShardOptions options;
    options.shards = shards;
    options.lookahead_ms = 7.0;
    sim::Simulator simulator(options);
    std::vector<std::pair<char, TimeMs>> log;
    FailureInjector injector(
        simulator,
        FailureInjectorConfig{.period_ms = 8'000.0,
                              .downtime_ms = 12'000.0,
                              .first_failure_ms = 3'000.0},
        [&] { log.emplace_back('f', simulator.now()); },
        [&] { log.emplace_back('r', simulator.now()); });
    injector.arm(40'000.0);
    simulator.run_until(40'000.0);
    EXPECT_EQ(log, (std::vector<std::pair<char, TimeMs>>{
                       {'f', 3'000.0}, {'r', 40'000.0}}))
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace paldia::cluster
