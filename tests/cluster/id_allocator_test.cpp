// Fleet id regression tests: endpoint-tagged IdAllocators must never
// collide across endpoints, and tag 0 must be bit-identical to the
// untagged allocator so every single-endpoint artifact (trace sampling
// decisions, decision logs, exports keyed by id) is unchanged by the
// fleet work.
#include "src/cluster/request.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/gateway.hpp"
#include "src/obs/sampler.hpp"

namespace paldia::cluster {
namespace {

TEST(IdAllocator, TagZeroIsBitIdenticalToDefault) {
  IdAllocator untagged;
  IdAllocator tagged(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(untagged.next_request().value, tagged.next_request().value);
    EXPECT_EQ(untagged.next_batch().value, tagged.next_batch().value);
    EXPECT_EQ(untagged.next_container().value, tagged.next_container().value);
    EXPECT_EQ(untagged.next_node().value, tagged.next_node().value);
  }
}

TEST(IdAllocator, DistinctTagsNeverCollideAcrossAllIdKinds) {
  IdAllocator a(1);
  IdAllocator b(2);
  std::set<std::int64_t> requests, batches, containers, nodes;
  for (int i = 0; i < 5000; ++i) {
    requests.insert(a.next_request().value);
    requests.insert(b.next_request().value);
    batches.insert(a.next_batch().value);
    batches.insert(b.next_batch().value);
    containers.insert(a.next_container().value);
    containers.insert(b.next_container().value);
    nodes.insert(a.next_node().value);
    nodes.insert(b.next_node().value);
  }
  EXPECT_EQ(requests.size(), 10000u);
  EXPECT_EQ(batches.size(), 10000u);
  EXPECT_EQ(containers.size(), 10000u);
  EXPECT_EQ(nodes.size(), 10000u);
}

TEST(IdAllocator, EndpointOfRecoversTheTag) {
  for (const int tag : {0, 1, 5, 63, 1023}) {
    IdAllocator ids(tag);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(IdAllocator::endpoint_of(ids.next_request().value), tag);
      EXPECT_EQ(IdAllocator::endpoint_of(ids.next_batch().value), tag);
    }
  }
}

TEST(IdAllocator, TaggedIdsStayPositive) {
  // 2^23 - 1 is the largest endpoint tag; the sign bit must stay clear so
  // Id::valid() and every int64 comparison keep working.
  IdAllocator ids((1 << 23) - 1);
  const std::int64_t id = ids.next_request().value;
  EXPECT_GT(id, 0);
  EXPECT_EQ(IdAllocator::endpoint_of(id), (1 << 23) - 1);
}

TEST(IdAllocator, SamplerDecisionsUnchangedForSingleEndpoint) {
  // The TraceSampler hashes raw id bits. Tag 0 emits the exact ids the
  // untagged allocator always did, so the kept-request set of any existing
  // single-endpoint run is bit-for-bit reproducible.
  const obs::TraceSampler sampler(64);
  IdAllocator untagged;
  IdAllocator tagged(0);
  int kept = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::int64_t a = untagged.next_request().value;
    const std::int64_t b = tagged.next_request().value;
    ASSERT_EQ(a, b);
    const bool keep = sampler.keep_compliant(a);
    EXPECT_EQ(keep, sampler.keep_compliant(b));
    kept += keep ? 1 : 0;
  }
  // ~1/64 of 100k; loose band just guards against all/none degeneracy.
  EXPECT_GT(kept, 1000);
  EXPECT_LT(kept, 2200);
}

TEST(IdAllocator, TwoGatewaysNeverMintTheSameRequestId) {
  // Fleet regression: endpoint-tagged gateways draw from disjoint id
  // ranges, so tracing/attribution keyed by request id cannot alias.
  constexpr auto kModel = models::ModelId::kResNet50;
  core::Gateway first(Rng(1), nullptr, /*endpoint_tag=*/0);
  core::Gateway second(Rng(1), nullptr, /*endpoint_tag=*/1);
  first.add_workload(kModel);
  second.add_workload(kModel);
  first.inject(kModel, 2000, 0.0, 10.0);
  second.inject(kModel, 2000, 0.0, 10.0);
  std::set<std::int64_t> ids;
  for (auto* gateway : {&first, &second}) {
    auto taken = gateway->take(kModel, 2000, 100.0);
    EXPECT_EQ(taken.size(), 2000u);
    for (const auto& request : taken) {
      EXPECT_TRUE(ids.insert(request.id.value).second)
          << "duplicate id " << request.id.value;
    }
  }
  EXPECT_EQ(ids.size(), 4000u);
  // Both gateways saw identical Rng streams, so the collision freedom comes
  // from the tag alone — the low bits do collide.
  EXPECT_EQ(IdAllocator::endpoint_of(*ids.begin()), 0);
  EXPECT_EQ(IdAllocator::endpoint_of(*ids.rbegin()), 1);
}

}  // namespace
}  // namespace paldia::cluster
