#include "src/cluster/cpu_executor.hpp"

#include <gtest/gtest.h>

#include "src/hw/catalog.hpp"

namespace paldia::cluster {
namespace {

const hw::CpuSpec& icelake16() {
  return hw::Catalog::instance().spec(hw::NodeType::kC6i_4xlarge).cpu;
}

CpuJob job(double solo, ExecutionReport* out) {
  CpuJob j;
  j.solo_ms = solo;
  j.on_complete = [out](const ExecutionReport& report) { *out = report; };
  return j;
}

TEST(CpuExecutor, RunsOneBatchAtATime) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(1));
  ExecutionReport a, b;
  executor.submit(job(100.0, &a));
  executor.submit(job(100.0, &b));
  EXPECT_TRUE(executor.busy());
  EXPECT_EQ(executor.queued_jobs(), 1);
  simulator.run_to_completion();
  EXPECT_GT(b.start_ms, a.end_ms - 1e-9);
  EXPECT_NEAR(b.queue_ms(), a.end_ms - a.submit_ms, 5.0);
}

TEST(CpuExecutor, ExecutionTimeNearSolo) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(2));
  ExecutionReport report;
  executor.submit(job(80.0, &report));
  simulator.run_to_completion();
  EXPECT_NEAR(report.end_ms - report.start_ms, 80.0, 12.0);  // 3% jitter
}

TEST(CpuExecutor, InterferenceFactorStretchesExecution) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(3));
  executor.set_interference_factor(2.0);
  ExecutionReport report;
  executor.submit(job(100.0, &report));
  simulator.run_to_completion();
  EXPECT_NEAR(report.end_ms - report.start_ms, 200.0, 20.0);
  // The report attributes the stretch as interference, not solo time.
  EXPECT_NEAR(report.solo_ms, (report.end_ms - report.start_ms) / 2.0, 1e-6);
  EXPECT_GT(report.interference_ms(), 80.0);
}

TEST(CpuExecutor, FailAllFailsRunningAndQueued) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(4));
  ExecutionReport a, b;
  executor.submit(job(100.0, &a));
  executor.submit(job(100.0, &b));
  simulator.run_until(10.0);
  executor.fail_all();
  EXPECT_TRUE(a.failed);
  EXPECT_TRUE(b.failed);
  EXPECT_FALSE(executor.busy());
  simulator.run_to_completion();  // no stray completion events
  EXPECT_TRUE(a.failed);
}

TEST(CpuExecutor, BusyTimeAccounting) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(5));
  ExecutionReport report;
  executor.submit(job(100.0, &report));
  simulator.run_to_completion();
  EXPECT_NEAR(executor.busy_time_ms(), report.end_ms - report.start_ms, 1e-6);
}

TEST(CpuExecutor, RecoverableAfterFailure) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(6));
  ExecutionReport doomed, healthy;
  executor.submit(job(100.0, &doomed));
  executor.fail_all();
  executor.submit(job(50.0, &healthy));
  simulator.run_to_completion();
  EXPECT_TRUE(doomed.failed);
  EXPECT_FALSE(healthy.failed);
  EXPECT_GT(healthy.end_ms, 0.0);
}

TEST(CpuExecutor, ThroughputMatchesServiceRate) {
  sim::Simulator simulator;
  CpuExecutor executor(simulator, icelake16(), Rng(7));
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    CpuJob j;
    j.solo_ms = 20.0;
    j.on_complete = [&completed](const ExecutionReport&) { ++completed; };
    executor.submit(std::move(j));
  }
  const TimeMs end = simulator.run_to_completion();
  EXPECT_EQ(completed, 50);
  EXPECT_NEAR(end, 50 * 20.0, 100.0);
}

}  // namespace
}  // namespace paldia::cluster
