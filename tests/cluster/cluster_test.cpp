#include "src/cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace paldia::cluster {
namespace {

TEST(Cluster, AcquireAfterProcurementDelay) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(1));
  TimeMs ready_at = -1.0;
  cluster.acquire(hw::NodeType::kG3s_xlarge,
                  [&](Node&) { ready_at = simulator.now(); });
  EXPECT_FALSE(cluster.held(hw::NodeType::kG3s_xlarge));
  simulator.run_to_completion();
  EXPECT_EQ(ready_at, ClusterConfig{}.provisioner.procurement_delay_ms);
  EXPECT_TRUE(cluster.held(hw::NodeType::kG3s_xlarge));
}

TEST(Cluster, AcquireImmediatelySkipsProcurement) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(2));
  cluster.acquire_immediately(hw::NodeType::kC6i_2xlarge);
  EXPECT_TRUE(cluster.held(hw::NodeType::kC6i_2xlarge));
}

TEST(Cluster, AcquireWhileHeldIsImmediate) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(3));
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  bool called = false;
  cluster.acquire(hw::NodeType::kG3s_xlarge, [&](Node&) { called = true; });
  EXPECT_TRUE(called);
}

TEST(Cluster, ConcurrentAcquiresShareOneProcurement) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(4));
  int callbacks = 0;
  cluster.acquire(hw::NodeType::kP3_2xlarge, [&](Node&) { ++callbacks; });
  cluster.acquire(hw::NodeType::kP3_2xlarge, [&](Node&) { ++callbacks; });
  simulator.run_to_completion();
  EXPECT_EQ(callbacks, 2);
}

TEST(Cluster, CostAccumulatesWithHeldTime) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(5));
  cluster.acquire_immediately(hw::NodeType::kP3_2xlarge);  // $3.06/h
  simulator.run_until(hours(1) );
  EXPECT_NEAR(cluster.total_cost(), 3.06, 1e-6);
  cluster.release(hw::NodeType::kP3_2xlarge);
  simulator.run_until(hours(2));
  EXPECT_NEAR(cluster.total_cost(), 3.06, 1e-6);  // stopped accruing
}

TEST(Cluster, WeightedCostAcrossNodeTypes) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(6));
  cluster.acquire_immediately(hw::NodeType::kC6i_2xlarge);  // $0.34/h
  simulator.run_until(hours(1));
  cluster.release(hw::NodeType::kC6i_2xlarge);
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);  // $0.75/h
  simulator.run_until(hours(1.5));
  EXPECT_NEAR(cluster.total_cost(), 0.34 + 0.75 * 0.5, 1e-6);
}

TEST(Cluster, HeldTypesListsCurrentHolds) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(7));
  EXPECT_TRUE(cluster.held_types().empty());
  cluster.acquire_immediately(hw::NodeType::kM4_xlarge);
  cluster.acquire_immediately(hw::NodeType::kP2_xlarge);
  const auto held = cluster.held_types();
  EXPECT_EQ(held.size(), 2u);
}

TEST(Cluster, ReleaseIdempotent) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(8));
  cluster.acquire_immediately(hw::NodeType::kM4_xlarge);
  cluster.release(hw::NodeType::kM4_xlarge);
  cluster.release(hw::NodeType::kM4_xlarge);
  EXPECT_FALSE(cluster.held(hw::NodeType::kM4_xlarge));
}

TEST(Cluster, ReacquireAccumulatesHeldTime) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(9));
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  simulator.run_until(minutes(10));
  cluster.release(hw::NodeType::kG3s_xlarge);
  simulator.run_until(minutes(20));
  cluster.acquire_immediately(hw::NodeType::kG3s_xlarge);
  simulator.run_until(minutes(25));
  EXPECT_NEAR(cluster.held_time_ms(hw::NodeType::kG3s_xlarge), minutes(15), 1.0);
}

TEST(Cluster, FailAndRecoverNode) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(10));
  cluster.fail_node(hw::NodeType::kG3s_xlarge);
  EXPECT_FALSE(cluster.node(hw::NodeType::kG3s_xlarge).is_up());
  cluster.recover_node(hw::NodeType::kG3s_xlarge);
  EXPECT_TRUE(cluster.node(hw::NodeType::kG3s_xlarge).is_up());
}

TEST(Cluster, ColdStartRollup) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(11));
  cluster.node(hw::NodeType::kG3s_xlarge).spawn_container(models::ModelId::kResNet50);
  cluster.node(hw::NodeType::kC6i_2xlarge).spawn_container(models::ModelId::kResNet50);
  EXPECT_EQ(cluster.total_cold_starts(), 2u);
}

TEST(Cluster, OneNodePerTableIIType) {
  sim::Simulator simulator;
  Cluster cluster(simulator, Rng(12));
  for (int i = 0; i < hw::kNodeTypeCount; ++i) {
    EXPECT_EQ(cluster.node(hw::NodeType(i)).type(), hw::NodeType(i));
  }
}

}  // namespace
}  // namespace paldia::cluster
