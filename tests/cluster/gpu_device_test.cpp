#include "src/cluster/gpu_device.hpp"

#include <gtest/gtest.h>

#include "src/hw/catalog.hpp"

namespace paldia::cluster {
namespace {

const hw::GpuSpec& m60() {
  return *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
}

GpuDeviceConfig no_noise() {
  GpuDeviceConfig config;
  config.jitter_sigma = 0.0;
  config.launch_overhead_ms = 0.0;
  return config;
}

GpuJob job(double solo, double fbr, ExecutionReport* out) {
  GpuJob j;
  j.solo_ms = solo;
  j.fbr = fbr;
  j.on_complete = [out](const ExecutionReport& report) { *out = report; };
  return j;
}

TEST(GpuDevice, SoloSpatialJobRunsAtSoloSpeed) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(1), no_noise());
  ExecutionReport report;
  device.submit_spatial(job(100.0, 0.5, &report));
  simulator.run_to_completion();
  EXPECT_NEAR(report.end_ms - report.start_ms, 100.0, 1e-6);
  EXPECT_NEAR(report.queue_ms(), 0.0, 1e-9);
  EXPECT_NEAR(report.interference_ms(), 0.0, 1e-6);
}

TEST(GpuDevice, TwoLightJobsDoNotInterfere) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(2), no_noise());
  ExecutionReport a, b;
  device.submit_spatial(job(100.0, 0.4, &a));
  device.submit_spatial(job(100.0, 0.4, &b));  // sum FBR = 0.8 <= 1
  simulator.run_to_completion();
  EXPECT_NEAR(a.end_ms - a.start_ms, 100.0, 1e-6);
  EXPECT_NEAR(b.end_ms - b.start_ms, 100.0, 1e-6);
}

TEST(GpuDevice, SaturatedJobsStretchPerProphetModel) {
  sim::Simulator simulator;
  GpuDeviceConfig config = no_noise();
  config.beta = 0.0;  // pure linear (Eq. 1) regime
  GpuDevice device(simulator, m60(), Rng(3), config);
  ExecutionReport a, b, c, d;
  // Four jobs of FBR 0.5: S = 2 -> each takes solo * 2.
  for (auto* report : {&a, &b, &c, &d}) {
    device.submit_spatial(job(100.0, 0.5, report));
  }
  simulator.run_to_completion();
  for (const auto* report : {&a, &b, &c, &d}) {
    EXPECT_NEAR(report->end_ms - report->start_ms, 200.0, 1e-6);
    EXPECT_NEAR(report->interference_ms(), 100.0, 1e-6);
  }
}

TEST(GpuDevice, SuperlinearBetaTerm) {
  sim::Simulator simulator;
  GpuDeviceConfig config = no_noise();
  config.beta = 0.25;
  GpuDevice device(simulator, m60(), Rng(4), config);
  std::vector<ExecutionReport> reports(8);
  for (auto& report : reports) device.submit_spatial(job(50.0, 0.5, &report));
  simulator.run_to_completion();
  // S = 4 -> slowdown = 4 * (1 + 0.25 * 3) = 7.
  for (const auto& report : reports) {
    EXPECT_NEAR(report.end_ms - report.start_ms, 350.0, 1e-6);
  }
}

TEST(GpuDevice, SlowdownFormula) {
  EXPECT_DOUBLE_EQ(GpuDevice::slowdown(0.5, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(GpuDevice::slowdown(1.0, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(GpuDevice::slowdown(2.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(GpuDevice::slowdown(2.0, 0.25), 2.0 * 1.25);
}

TEST(GpuDevice, SerialLaneIsFifoAndExclusive) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(5), no_noise());
  ExecutionReport a, b, c;
  device.submit_serial(job(100.0, 0.5, &a));
  device.submit_serial(job(100.0, 0.5, &b));
  device.submit_serial(job(100.0, 0.5, &c));
  simulator.run_to_completion();
  EXPECT_NEAR(a.end_ms, 100.0, 1e-6);
  EXPECT_NEAR(b.end_ms, 200.0, 1e-6);
  EXPECT_NEAR(c.end_ms, 300.0, 1e-6);
  // Queueing time is attributed, execution stays solo-speed.
  EXPECT_NEAR(c.queue_ms(), 200.0, 1e-6);
  EXPECT_NEAR(c.interference_ms(), 0.0, 1e-6);
}

TEST(GpuDevice, SerialJobSlowsSpatialJobsButNotItself) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(6), no_noise());
  ExecutionReport serial, spatial;
  device.submit_serial(job(100.0, 0.6, &serial));
  device.submit_spatial(job(100.0, 0.6, &spatial));
  simulator.run_to_completion();
  // Serial runs at full speed; spatial sees S = 1.2 while the serial job is
  // resident, then finishes alone.
  EXPECT_NEAR(serial.end_ms - serial.start_ms, 100.0, 1e-6);
  EXPECT_GT(spatial.end_ms - spatial.start_ms, 100.0);
}

TEST(GpuDevice, HybridMatchesEquationOneStructure) {
  // y batches queued + (N - y) concurrent: the last completion time should
  // be close to queued-drain + stretched-concurrent (Eq. 1 with the device
  // running both lanes concurrently, so strictly <= the sum).
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(7), no_noise());
  const double solo = 100.0, fbr = 0.6;
  std::vector<ExecutionReport> serial(3), spatial(3);
  for (auto& report : serial) device.submit_serial(job(solo, fbr, &report));
  for (auto& report : spatial) device.submit_spatial(job(solo, fbr, &report));
  simulator.run_to_completion();
  double last = 0.0;
  for (const auto& report : serial) last = std::max(last, report.end_ms);
  for (const auto& report : spatial) last = std::max(last, report.end_ms);
  const double queued_drain = 3 * solo;
  EXPECT_GE(last, queued_drain - 1e-6);
  // Upper bound: full Eq. 1 sum with S including the serial resident.
  const double s = 4 * fbr;
  const double stretched = solo * GpuDevice::slowdown(s, device.config().beta);
  EXPECT_LE(last, queued_drain + stretched + 1e-6);
}

TEST(GpuDevice, MpsClientLimitQueuesExcessJobs) {
  sim::Simulator simulator;
  GpuDeviceConfig config = no_noise();
  config.max_spatial_jobs = 2;
  GpuDevice device(simulator, m60(), Rng(8), config);
  std::vector<ExecutionReport> reports(4);
  for (auto& report : reports) device.submit_spatial(job(100.0, 0.3, &report));
  EXPECT_EQ(device.active_spatial_jobs(), 2);
  simulator.run_to_completion();
  // The two queued jobs start only after the first two finish.
  int started_late = 0;
  for (const auto& report : reports) {
    if (report.start_ms > 0.0) ++started_late;
  }
  EXPECT_EQ(started_late, 2);
}

TEST(GpuDevice, FailAllReportsFailures) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(9), no_noise());
  ExecutionReport running, queued;
  device.submit_spatial(job(100.0, 0.5, &running));
  device.submit_serial(job(100.0, 0.5, &queued));
  simulator.run_until(50.0);
  device.fail_all();
  EXPECT_TRUE(running.failed);
  EXPECT_FALSE(device.busy());
  simulator.run_to_completion();
  EXPECT_TRUE(queued.failed);
}

TEST(GpuDevice, BusyTimeTracksNonIdleTime) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(10), no_noise());
  ExecutionReport a;
  device.submit_spatial(job(100.0, 0.5, &a));
  simulator.run_to_completion();
  EXPECT_NEAR(device.busy_time_ms(), 100.0, 1e-6);
  // Idle gap then another job.
  simulator.schedule_in(100.0, [&] {
    ExecutionReport* leak = new ExecutionReport();
    device.submit_serial(job(50.0, 0.5, leak));
  });
  simulator.run_to_completion();
  EXPECT_NEAR(device.busy_time_ms(), 150.0, 1e-6);
}

TEST(GpuDevice, JitterBoundedAndDeterministic) {
  sim::Simulator s1, s2;
  GpuDeviceConfig config;  // default jitter
  GpuDevice d1(s1, m60(), Rng(11), config);
  GpuDevice d2(s2, m60(), Rng(11), config);
  ExecutionReport r1, r2;
  d1.submit_spatial(job(100.0, 0.5, &r1));
  d2.submit_spatial(job(100.0, 0.5, &r2));
  s1.run_to_completion();
  s2.run_to_completion();
  EXPECT_EQ(r1.end_ms, r2.end_ms);  // same seed, same result
  EXPECT_NEAR(r1.end_ms - r1.start_ms, 100.0, 15.0);
}

TEST(GpuDevice, CurrentFbrSum) {
  sim::Simulator simulator;
  GpuDevice device(simulator, m60(), Rng(12), no_noise());
  ExecutionReport a, b;
  device.submit_spatial(job(100.0, 0.4, &a));
  device.submit_serial(job(100.0, 0.3, &b));
  EXPECT_NEAR(device.current_fbr_sum(), 0.7, 1e-9);
  simulator.run_to_completion();
  EXPECT_EQ(device.current_fbr_sum(), 0.0);
}

// Throughput property across the spatial lane: with heavy oversubscription,
// effective throughput degrades below the linear-regime value (the collapse
// that dooms INFless-style all-spatial scheduling in Fig. 13a).
TEST(GpuDevice, ThroughputCollapsesUnderOversubscription) {
  auto drain_time = [&](int jobs) {
    sim::Simulator simulator;
    GpuDevice device(simulator, m60(), Rng(13), no_noise());
    std::vector<ExecutionReport> reports(jobs);
    for (auto& report : reports) device.submit_spatial(job(50.0, 0.6, &report));
    return simulator.run_to_completion();
  };
  const double t4 = drain_time(4);
  const double t16 = drain_time(16);
  // 4x the work must take *more* than 4x the time under the beta term.
  EXPECT_GT(t16, 4.0 * t4 * 1.3);
}

}  // namespace
}  // namespace paldia::cluster
