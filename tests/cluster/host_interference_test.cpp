#include "src/cluster/host_interference.hpp"

#include <gtest/gtest.h>

#include "src/cluster/node.hpp"

namespace paldia::cluster {
namespace {

TEST(HostInterference, SebsWorkloadsDefined) {
  const auto coresidents = sebs_coresidents();
  ASSERT_EQ(coresidents.size(), 3u);  // compression, HTML, thumbnailing
  for (const auto& co : coresidents) {
    EXPECT_GT(co.cpu_intensity, 0.0);
    EXPECT_GT(co.gpu_intensity, 0.0);
    // CPU contention dominates (Table III: effects pronounced on CPU nodes).
    EXPECT_GT(co.cpu_intensity, co.gpu_intensity * 3.0);
  }
}

TEST(HostInterference, FactorsStartAtOne) {
  sim::Simulator simulator;
  HostInterference interference(simulator, sebs_coresidents(), Rng(1));
  EXPECT_DOUBLE_EQ(interference.current_cpu_factor(), 1.0);
  EXPECT_DOUBLE_EQ(interference.current_gpu_factor(), 1.0);
}

TEST(HostInterference, PhasesToggleOverTime) {
  sim::Simulator simulator;
  HostInterference interference(simulator, sebs_coresidents(), Rng(2));
  interference.arm(minutes(5));
  double max_cpu = 1.0;
  for (int i = 1; i <= 300; ++i) {
    simulator.run_until(i * 1000.0);
    max_cpu = std::max(max_cpu, interference.current_cpu_factor());
  }
  EXPECT_GT(max_cpu, 1.3);  // at least one class was active at some point
}

TEST(HostInterference, PushesFactorsToAttachedNodes) {
  sim::Simulator simulator;
  Node node(simulator, NodeId{0}, hw::NodeType::kC6i_4xlarge, Rng(3));
  std::vector<CoResident> always_on{{"hog", 1.0, 0.1, seconds(1000), seconds(0.001)}};
  HostInterference interference(simulator, always_on, Rng(4));
  interference.attach(node);
  interference.arm(minutes(2));
  simulator.run_until(seconds(30));
  // The single co-resident toggles on almost immediately and stays on.
  EXPECT_NEAR(node.cpu_executor()->interference_factor(), 2.0, 0.01);
}

TEST(HostInterference, StopsAtEndTime) {
  sim::Simulator simulator;
  HostInterference interference(simulator, sebs_coresidents(), Rng(5));
  interference.arm(seconds(10));
  simulator.run_to_completion();  // must terminate (no unbounded toggling)
  EXPECT_GE(simulator.now(), seconds(10) - 1.0);
}

}  // namespace
}  // namespace paldia::cluster
