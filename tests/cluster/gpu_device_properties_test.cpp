// Property-based sweeps over the GPU device physics: conservation,
// monotonicity and fairness invariants that must hold for any workload
// parameters — these pin down the substrate the schedulers reason about.
#include <gtest/gtest.h>

#include <numeric>

#include "src/cluster/gpu_device.hpp"
#include "src/hw/catalog.hpp"

namespace paldia::cluster {
namespace {

const hw::GpuSpec& gpu(hw::NodeType type) {
  return *hw::Catalog::instance().spec(type).gpu;
}

GpuDeviceConfig clean() {
  GpuDeviceConfig config;
  config.jitter_sigma = 0.0;
  config.launch_overhead_ms = 0.0;
  return config;
}

struct Submitted {
  std::vector<ExecutionReport> reports;
};

// Run k spatial + m serial identical jobs; return all reports.
Submitted run_mix(const hw::GpuSpec& spec, int spatial, int serial, double solo,
                  double fbr, double compute, double beta = 0.25) {
  sim::Simulator simulator;
  GpuDeviceConfig config = clean();
  config.beta = beta;
  GpuDevice device(simulator, spec, Rng(11), config);
  Submitted result;
  result.reports.resize(static_cast<std::size_t>(spatial + serial));
  for (int i = 0; i < spatial + serial; ++i) {
    GpuJob job;
    job.solo_ms = solo;
    job.fbr = fbr;
    job.compute = compute;
    auto* out = &result.reports[static_cast<std::size_t>(i)];
    job.on_complete = [out](const ExecutionReport& report) { *out = report; };
    if (i < spatial) {
      device.submit_spatial(std::move(job));
    } else {
      device.submit_serial(std::move(job));
    }
  }
  simulator.run_to_completion();
  return result;
}

class PhysicsSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(PhysicsSweep, SpatialJobsFinishTogetherAndNoFasterThanSolo) {
  const auto [k, fbr, compute] = GetParam();
  const auto result = run_mix(gpu(hw::NodeType::kG3s_xlarge), k, 0, 80.0, fbr, compute);
  double min_end = 1e18, max_end = 0.0;
  for (const auto& report : result.reports) {
    EXPECT_GE(report.end_ms - report.start_ms, 80.0 - 1e-6);  // never superlinear speedup
    min_end = std::min(min_end, report.end_ms);
    max_end = std::max(max_end, report.end_ms);
  }
  // Identical jobs under processor sharing end simultaneously (fairness).
  EXPECT_NEAR(min_end, max_end, 1e-6);
}

TEST_P(PhysicsSweep, StretchNeverBelowDemandSum) {
  const auto [k, fbr, compute] = GetParam();
  const auto result = run_mix(gpu(hw::NodeType::kG3s_xlarge), k, 0, 80.0, fbr, compute);
  const double demand = std::max(k * fbr, k * compute);
  const double expected_min = 80.0 * std::max(1.0, demand);
  for (const auto& report : result.reports) {
    EXPECT_GE(report.end_ms - report.start_ms, expected_min - 1e-6)
        << "k=" << k << " fbr=" << fbr << " compute=" << compute;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PhysicsSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.1, 0.4, 0.8),
                       ::testing::Values(0.0, 0.3, 0.9)));

TEST(GpuDeviceProperties, WorkConservationUnderLightLoad) {
  // With total demand <= 1 in both dimensions, k jobs take exactly solo
  // time — concurrency is free (the premise of MPS on underutilised GPUs).
  const auto result = run_mix(gpu(hw::NodeType::kP3_2xlarge), 3, 0, 60.0, 0.2, 0.3);
  for (const auto& report : result.reports) {
    EXPECT_NEAR(report.end_ms - report.start_ms, 60.0, 1e-6);
  }
}

TEST(GpuDeviceProperties, ComputeAndBandwidthWorstOfGoverns) {
  // compute-bound mix: 4 x 0.4 compute vs 4 x 0.1 bandwidth -> compute wins.
  const auto compute_bound =
      run_mix(gpu(hw::NodeType::kP3_2xlarge), 4, 0, 50.0, 0.1, 0.4, 0.0);
  EXPECT_NEAR(compute_bound.reports[0].end_ms, 50.0 * 1.6, 1e-6);
  // bandwidth-bound mix: reversed demands -> same stretch from the other axis.
  const auto bandwidth_bound =
      run_mix(gpu(hw::NodeType::kP3_2xlarge), 4, 0, 50.0, 0.4, 0.1, 0.0);
  EXPECT_NEAR(bandwidth_bound.reports[0].end_ms, 50.0 * 1.6, 1e-6);
}

TEST(GpuDeviceProperties, SerialLaneImmuneToBandwidthButNotCompute) {
  // A serial job beside a bandwidth-heavy spatial set keeps solo speed...
  const auto bw = run_mix(gpu(hw::NodeType::kP3_2xlarge), 2, 1, 50.0, 0.6, 0.1, 0.0);
  const auto& serial_report = bw.reports.back();
  EXPECT_NEAR(serial_report.end_ms - serial_report.start_ms, 50.0, 1.0);
  // ...but SM contention is physical and slows it too.
  const auto cx = run_mix(gpu(hw::NodeType::kP3_2xlarge), 2, 1, 50.0, 0.1, 0.6, 0.0);
  const auto& contended_serial = cx.reports.back();
  EXPECT_GT(contended_serial.end_ms - contended_serial.start_ms, 60.0);
}

TEST(GpuDeviceProperties, SuperlinearWasteGrowsWithBeta) {
  auto drain = [&](double beta) {
    const auto result =
        run_mix(gpu(hw::NodeType::kG3s_xlarge), 8, 0, 40.0, 0.5, 0.0, beta);
    double end = 0.0;
    for (const auto& report : result.reports) end = std::max(end, report.end_ms);
    return end;
  };
  EXPECT_LT(drain(0.0), drain(0.2));
  EXPECT_LT(drain(0.2), drain(0.5));
  // beta = 0 is exactly work-conserving: 8 jobs of S = 4 total -> 4x solo.
  EXPECT_NEAR(drain(0.0), 40.0 * 4.0, 1e-6);
}

TEST(GpuDeviceProperties, ThroughputIndependentOfArrivalPattern) {
  // Work conservation (beta = 0): the drain time of a job set is the same
  // whether submitted at once or staggered (as long as the device never
  // idles).
  const auto& spec = gpu(hw::NodeType::kG3s_xlarge);
  GpuDeviceConfig config = clean();
  config.beta = 0.0;
  auto drain_staggered = [&](DurationMs gap) {
    sim::Simulator simulator;
    GpuDevice device(simulator, spec, Rng(3), config);
    for (int i = 0; i < 6; ++i) {
      simulator.schedule_at(i * gap, [&device] {
        GpuJob job;
        job.solo_ms = 100.0;
        job.fbr = 0.5;
        job.on_complete = [](const ExecutionReport&) {};
        device.submit_spatial(std::move(job));
      });
    }
    return simulator.run_to_completion();
  };
  // 6 jobs x 100 ms solo x FBR 0.5 -> 300 ms of bandwidth-limited work.
  EXPECT_NEAR(drain_staggered(0.0), 300.0, 1e-6);
  // Staggered arrivals leave the device bandwidth-unsaturated briefly at
  // the start (one resident job demands only 0.5), so a few ms of
  // bandwidth-time go unused; the drain still lands within that slack.
  EXPECT_NEAR(drain_staggered(10.0), 300.0, 15.0);
  EXPECT_GE(drain_staggered(10.0), 300.0 - 1e-6);
}

TEST(GpuDeviceProperties, MixedFbrJobsFinishInDemandOrder) {
  // Two jobs, same solo work, different bandwidth demand, on a saturated
  // device: both share the same slowdown (global contention), so they
  // finish together — per-job demand buys no private advantage under MPS.
  sim::Simulator simulator;
  GpuDevice device(simulator, gpu(hw::NodeType::kG3s_xlarge), Rng(5), clean());
  ExecutionReport light, heavy;
  GpuJob a;
  a.solo_ms = 100.0;
  a.fbr = 0.3;
  a.on_complete = [&](const ExecutionReport& r) { light = r; };
  GpuJob b;
  b.solo_ms = 100.0;
  b.fbr = 0.9;
  b.on_complete = [&](const ExecutionReport& r) { heavy = r; };
  device.submit_spatial(std::move(a));
  device.submit_spatial(std::move(b));
  simulator.run_to_completion();
  EXPECT_NEAR(light.end_ms, heavy.end_ms, 1e-6);
}

}  // namespace
}  // namespace paldia::cluster
