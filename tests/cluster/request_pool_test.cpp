#include "src/cluster/request_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "src/common/rng.hpp"

namespace paldia::cluster {
namespace {

Request make_request(std::int64_t id, TimeMs arrival) {
  Request request;
  request.id = RequestId{id};
  request.model = models::ModelId::kResNet50;
  request.arrival_ms = arrival;
  return request;
}

TEST(RequestRing, StartsEmpty) {
  RequestRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.arrived_before(1e9), 0u);
}

TEST(RequestRing, PushBackPreservesOrder) {
  RequestRing ring;
  for (int i = 0; i < 100; ++i) ring.push_back(make_request(i, i * 1.0));
  ASSERT_EQ(ring.size(), 100u);
  EXPECT_EQ(ring.front().id.value, 0);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.at(i).id.value, static_cast<std::int64_t>(i));
  }
}

TEST(RequestRing, ArrivedBeforeBinarySearchEdges) {
  RequestRing ring;
  for (int i = 0; i < 10; ++i) ring.push_back(make_request(i, 10.0 * i));
  EXPECT_EQ(ring.arrived_before(-1.0), 0u);   // before the first arrival
  EXPECT_EQ(ring.arrived_before(0.0), 1u);    // boundary is inclusive
  EXPECT_EQ(ring.arrived_before(45.0), 5u);   // between arrivals
  EXPECT_EQ(ring.arrived_before(90.0), 10u);  // exactly the last arrival
  EXPECT_EQ(ring.arrived_before(1e9), 10u);   // far future
}

TEST(RequestRing, ArrivedBeforeHandlesDuplicateArrivals) {
  RequestRing ring;
  for (int i = 0; i < 6; ++i) ring.push_back(make_request(i, 5.0));
  EXPECT_EQ(ring.arrived_before(4.9), 0u);
  EXPECT_EQ(ring.arrived_before(5.0), 6u);  // all duplicates are <= now
}

TEST(RequestRing, PopFrontIntoMovesPrefix) {
  RequestRing ring;
  RequestArena arena;
  for (int i = 0; i < 20; ++i) ring.push_back(make_request(i, i * 1.0));
  RequestBlock out = arena.acquire();
  ring.pop_front_into(7, out);
  ASSERT_EQ(out.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(out[i].id.value, static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(ring.size(), 13u);
  EXPECT_EQ(ring.front().id.value, 7);
}

TEST(RequestRing, PopFrontIntoZeroOnEmptyRingIsNoop) {
  RequestRing ring;
  RequestArena arena;
  RequestBlock out = arena.acquire();
  ring.pop_front_into(0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(ring.empty());
}

TEST(RequestRing, PopFrontIntoSplitsAcrossWrap) {
  RequestRing ring;
  RequestArena arena;
  // Fill to the initial capacity (16), drain most, then refill so the live
  // window straddles the physical end of the buffer.
  for (int i = 0; i < 16; ++i) ring.push_back(make_request(i, i * 1.0));
  {
    RequestBlock scratch = arena.acquire();
    ring.pop_front_into(12, scratch);
  }
  for (int i = 16; i < 26; ++i) ring.push_back(make_request(i, i * 1.0));
  ASSERT_EQ(ring.size(), 14u);  // head at 12, wraps past index 15
  RequestBlock out = arena.acquire();
  ring.pop_front_into(14, out);  // both segments of the wrap
  ASSERT_EQ(out.size(), 14u);
  for (std::size_t i = 0; i < 14; ++i) {
    EXPECT_EQ(out[i].id.value, static_cast<std::int64_t>(12 + i));
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RequestRing, GrowPreservesLogicalOrderAcrossWrap) {
  RequestRing ring;
  RequestArena arena;
  for (int i = 0; i < 16; ++i) ring.push_back(make_request(i, i * 1.0));
  {
    RequestBlock scratch = arena.acquire();
    ring.pop_front_into(10, scratch);
  }
  // Head is now mid-buffer; pushing past capacity forces grow() while the
  // live elements wrap.
  for (int i = 16; i < 40; ++i) ring.push_back(make_request(i, i * 1.0));
  ASSERT_EQ(ring.size(), 30u);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(ring.at(i).id.value, static_cast<std::int64_t>(10 + i));
  }
}

TEST(RequestRing, AppendAndSortMergesRequeuedBatch) {
  RequestRing ring;
  // Fresh arrivals at t = 100..104.
  for (int i = 0; i < 5; ++i) ring.push_back(make_request(100 + i, 100.0 + i));
  // A failed batch from t = 0..2 comes back.
  std::vector<Request> failed;
  for (int i = 0; i < 3; ++i) failed.push_back(make_request(i, 1.0 * i));
  ring.append_and_sort(failed.data(), failed.size());
  ASSERT_EQ(ring.size(), 8u);
  // Re-queued (older) requests sort to the front; order is globally sorted.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ring.at(i).id.value, static_cast<std::int64_t>(i));
  }
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LE(ring.at(i - 1).arrival_ms, ring.at(i).arrival_ms);
  }
}

TEST(RequestRing, AppendAndSortZeroIsNoop) {
  RequestRing ring;
  ring.push_back(make_request(1, 1.0));
  ring.append_and_sort(nullptr, 0);
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.front().id.value, 1);
}

TEST(RequestRing, AppendAndSortWorksWhenWrapped) {
  RequestRing ring;
  RequestArena arena;
  for (int i = 0; i < 16; ++i) ring.push_back(make_request(i, 100.0 + i));
  {
    RequestBlock scratch = arena.acquire();
    ring.pop_front_into(12, scratch);  // head mid-buffer
  }
  for (int i = 16; i < 24; ++i) ring.push_back(make_request(i, 100.0 + i));
  const Request back = make_request(99, 0.5);  // older than everything live
  ring.append_and_sort(&back, 1);
  ASSERT_EQ(ring.size(), 13u);
  EXPECT_EQ(ring.front().id.value, 99);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_LE(ring.at(i - 1).arrival_ms, ring.at(i).arrival_ms);
  }
}

TEST(RequestRing, AppendAndSortStableOnDuplicateArrivals) {
  // Requests sharing an arrival timestamp must keep their relative order:
  // residents (in ring order) before the requeued batch, and each group in
  // its own original order. A plain std::sort is free to permute such ties,
  // which silently broke the pooled-vs-bypass bit-identity contract.
  RequestRing ring;
  ring.push_back(make_request(0, 5.0));
  ring.push_back(make_request(1, 5.0));
  ring.push_back(make_request(2, 9.0));
  const Request requeued[] = {make_request(3, 5.0), make_request(4, 5.0),
                              make_request(5, 2.0)};
  ring.append_and_sort(requeued, 3);
  ASSERT_EQ(ring.size(), 6u);
  const std::int64_t expected[] = {5, 0, 1, 3, 4, 2};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ring.at(i).id.value, expected[i]) << i;
  }
}

TEST(RequestRing, AppendAndSortStableAcrossRepeatedRequeues) {
  // Requeue the same equal-arrival batch twice; each merge must be a
  // no-op permutation-wise.
  RequestRing ring;
  RequestArena arena;
  for (int i = 0; i < 4; ++i) ring.push_back(make_request(i, 7.0));
  for (int round = 0; round < 2; ++round) {
    std::vector<Request> batch;
    RequestBlock out = arena.acquire();
    ring.pop_front_into(2, out);
    for (std::size_t i = 0; i < out.size(); ++i) batch.push_back(out[i]);
    ring.append_and_sort(batch.data(), batch.size());
    ASSERT_EQ(ring.size(), 4u);
  }
  // 0,1 popped and requeued behind 2,3; then 2,3 popped and requeued
  // behind 0,1 — back to the original order.
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.at(static_cast<std::size_t>(i)).id.value, i);
  }
}

// Randomized churn against a std::deque + std::stable_sort reference model —
// the exact data structure and requeue recipe the gateway used before
// pooling. Batches of duplicate arrival timestamps are injected on purpose:
// ties must resolve by requeue order on both sides.
TEST(RequestRing, RandomizedChurnMatchesDequeReference) {
  RequestRing ring;
  RequestArena arena;
  std::deque<Request> reference;
  Rng rng(0x51D3);
  std::int64_t next_id = 0;
  double clock = 0.0;
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform(0.0, 3.0));
    if (op == 0) {  // inject a sorted run of fresh arrivals
      const int n = static_cast<int>(rng.uniform(1.0, 9.0));
      // Roughly a third of batches arrive at one shared timestamp —
      // the duplicate-arrival shape that exposes unstable sorting.
      const bool duplicates = static_cast<int>(rng.uniform(0.0, 3.0)) == 0;
      if (duplicates) clock += rng.uniform(0.0, 2.0);
      for (int i = 0; i < n; ++i) {
        if (!duplicates) clock += rng.uniform(0.0, 2.0);
        const Request request = make_request(next_id++, clock);
        ring.push_back(request);
        reference.push_back(request);
      }
    } else if (op == 1 && !reference.empty()) {  // take an arrived prefix
      const double now =
          reference.front().arrival_ms + rng.uniform(0.0, 10.0);
      std::size_t expected = 0;
      while (expected < reference.size() &&
             reference[expected].arrival_ms <= now) {
        ++expected;
      }
      ASSERT_EQ(ring.arrived_before(now), expected);
      const auto n = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(expected + 1)));
      RequestBlock out = arena.acquire();
      ring.pop_front_into(n, out);
      ASSERT_EQ(out.size(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i].id.value, reference.front().id.value);
        reference.pop_front();
      }
    } else if (op == 2 && !reference.empty()) {  // requeue a failed batch
      const int n = 1 + static_cast<int>(rng.uniform(
                            0.0, static_cast<double>(
                                     std::min<std::size_t>(reference.size(), 8))));
      std::vector<Request> failed;
      for (int i = 0; i < n; ++i) {
        failed.push_back(reference.front());
        reference.pop_front();
      }
      {
        RequestBlock scratch = arena.acquire();
        ring.pop_front_into(static_cast<std::size_t>(n), scratch);
      }
      ring.append_and_sort(failed.data(), failed.size());
      reference.insert(reference.end(), failed.begin(), failed.end());
      std::stable_sort(reference.begin(), reference.end(),
                       [](const Request& a, const Request& b) {
                         return a.arrival_ms < b.arrival_ms;
                       });
    }
    ASSERT_EQ(ring.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_EQ(ring.front().id.value, reference.front().id.value);
      const auto spot = static_cast<std::size_t>(rng.uniform(
          0.0, static_cast<double>(reference.size())));
      ASSERT_EQ(ring.at(spot).id.value, reference[spot].id.value);
      ASSERT_EQ(ring.at(spot).arrival_ms, reference[spot].arrival_ms);
    }
  }
}

}  // namespace
}  // namespace paldia::cluster
