#include "src/models/zoo.hpp"

#include <gtest/gtest.h>

namespace paldia::models {
namespace {

TEST(Zoo, SixteenModels) {
  const Zoo& zoo = Zoo::instance();
  EXPECT_EQ(zoo.all().size(), static_cast<std::size_t>(kModelCount));
  EXPECT_EQ(zoo.vision_models().size(), static_cast<std::size_t>(kVisionModelCount));
  EXPECT_EQ(zoo.language_models().size(), 4u);
}

TEST(Zoo, NamesMatchIds) {
  const Zoo& zoo = Zoo::instance();
  for (int i = 0; i < kModelCount; ++i) {
    const auto id = ModelId(i);
    EXPECT_EQ(zoo.spec(id).name, model_id_name(id));
  }
}

TEST(Zoo, PaperBatchSizeBounds) {
  const Zoo& zoo = Zoo::instance();
  for (const auto& spec : zoo.all()) {
    if (spec.domain == Domain::kLanguage) {
      EXPECT_EQ(spec.max_batch, 8) << spec.name;
    } else {
      EXPECT_LE(spec.max_batch, 128) << spec.name;
      EXPECT_GE(spec.max_batch, 32) << spec.name;
    }
  }
}

TEST(Zoo, AllSlosAre200ms) {
  for (const auto& spec : Zoo::instance().all()) {
    EXPECT_DOUBLE_EQ(spec.slo_ms, 200.0) << spec.name;
  }
}

TEST(Zoo, LanguageModelsHaveVeryHighFbr) {
  const Zoo& zoo = Zoo::instance();
  double min_language_fbr = 1.0, max_vision_fbr = 0.0;
  for (const auto& spec : zoo.all()) {
    if (spec.domain == Domain::kLanguage) {
      min_language_fbr = std::min(min_language_fbr, spec.fbr_v100);
    } else {
      max_vision_fbr = std::max(max_vision_fbr, spec.fbr_v100);
    }
  }
  EXPECT_GT(min_language_fbr, max_vision_fbr);
}

TEST(Zoo, EfficientNetB0IsTheLowFbrOutlier) {
  const Zoo& zoo = Zoo::instance();
  const double effnet = zoo.spec(ModelId::kEfficientNetB0).fbr_v100;
  for (ModelId id : zoo.vision_models()) {
    if (id == ModelId::kEfficientNetB0) continue;
    EXPECT_LT(effnet, zoo.spec(id).fbr_v100) << zoo.spec(id).name;
  }
}

TEST(Zoo, HighFbrFlagMatchesPaperClassification) {
  const Zoo& zoo = Zoo::instance();
  // Section V: GoogleNet, DPN 92 etc. are the high-FBR vision models.
  EXPECT_TRUE(zoo.spec(ModelId::kGoogleNet).high_fbr);
  EXPECT_TRUE(zoo.spec(ModelId::kDpn92).high_fbr);
  EXPECT_TRUE(zoo.spec(ModelId::kResNet50).high_fbr);
  EXPECT_FALSE(zoo.spec(ModelId::kSeNet18).high_fbr);
  EXPECT_FALSE(zoo.spec(ModelId::kEfficientNetB0).high_fbr);
  // Every language model counts as high-FBR traffic-wise.
  for (ModelId id : zoo.language_models()) {
    EXPECT_TRUE(zoo.spec(id).high_fbr);
  }
}

TEST(Zoo, HeavierArchitecturesAreSlower) {
  const Zoo& zoo = Zoo::instance();
  // Relative ordering of well-known architectures must hold.
  EXPECT_GT(zoo.spec(ModelId::kResNet50).solo_v100_ms,
            zoo.spec(ModelId::kResNet18).solo_v100_ms);
  EXPECT_GT(zoo.spec(ModelId::kMobileNetV2).cpu_per_item_ms,
            zoo.spec(ModelId::kMobileNet).cpu_per_item_ms - 1e-9);
  EXPECT_GT(zoo.spec(ModelId::kBert).solo_v100_ms,
            zoo.spec(ModelId::kDistilBert).solo_v100_ms);
}

TEST(Zoo, MemoryFootprintsPositive) {
  for (const auto& spec : Zoo::instance().all()) {
    EXPECT_GT(spec.container_memory, 0u) << spec.name;
  }
}

TEST(Zoo, FixedFractionsSane) {
  for (const auto& spec : Zoo::instance().all()) {
    EXPECT_GT(spec.fixed_fraction, 0.0) << spec.name;
    EXPECT_LT(spec.fixed_fraction, 0.5) << spec.name;
  }
}

}  // namespace
}  // namespace paldia::models
