#include "src/models/profiler.hpp"

#include <gtest/gtest.h>

#include "src/cluster/gpu_device.hpp"
#include "src/models/zoo.hpp"

namespace paldia::models {
namespace {

const ModelSpec& resnet50() { return Zoo::instance().spec(ModelId::kResNet50); }
const hw::GpuSpec& m60() {
  return *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
}

TEST(Profiler, MeasuredSoloNearAnalytic) {
  Profiler profiler;
  const auto& model = resnet50();
  const double analytic = gpu_solo_ms(model, m60(), model.max_batch);
  const double measured = profiler.measure_solo_ms(model, m60(), model.max_batch);
  // Measured includes launch overhead + jitter; must stay within 5%.
  EXPECT_NEAR(measured, analytic, analytic * 0.05);
  EXPECT_GT(measured, analytic);  // overhead is strictly positive on average
}

TEST(Profiler, SlowdownIsOneWhenUnsaturated) {
  Profiler profiler;
  const auto& model = Zoo::instance().spec(ModelId::kEfficientNetB0);
  // Two low-FBR batches on the V100: total demand < 1, no slowdown.
  const auto& v100 = *hw::Catalog::instance().spec(hw::NodeType::kP3_2xlarge).gpu;
  const double slowdown = profiler.measure_slowdown(model, v100, 64, 2);
  EXPECT_NEAR(slowdown, 1.0, 0.08);
}

TEST(Profiler, SlowdownGrowsWithColocation) {
  Profiler profiler;
  const auto& model = resnet50();
  const double s4 = profiler.measure_slowdown(model, m60(), model.max_batch, 4);
  const double s8 = profiler.measure_slowdown(model, m60(), model.max_batch, 8);
  EXPECT_GT(s4, 1.2);
  EXPECT_GT(s8, s4);
}

TEST(Profiler, SlowdownMatchesDeviceFormula) {
  Profiler profiler;
  const auto& model = resnet50();
  const int k = 6;
  const double fbr = gpu_fbr(model, m60(), model.max_batch);
  const double expected =
      cluster::GpuDevice::slowdown(k * fbr, cluster::GpuDeviceConfig{}.beta);
  const double measured = profiler.measure_slowdown(model, m60(), model.max_batch, k);
  EXPECT_NEAR(measured, expected, expected * 0.08);
}

TEST(Profiler, FitRecoversKnownParameters) {
  // Synthesise exact (k, slowdown) pairs from the model and recover them.
  const double fbr = 0.6, beta = 0.3;
  std::vector<std::pair<int, double>> observations;
  for (int k : {2, 3, 4, 6, 8, 12}) {
    const double s = k * fbr;
    observations.emplace_back(k, s <= 1.0 ? 1.0 : s * (1.0 + beta * (s - 1.0)));
  }
  const auto [fit_fbr, fit_beta] = Profiler::fit_fbr_beta(observations);
  EXPECT_NEAR(fit_fbr, fbr, 0.02);
  EXPECT_NEAR(fit_beta, beta, 0.05);
}

TEST(Profiler, FullProfileRecoversEnvelope) {
  Profiler profiler;
  const auto& model = resnet50();
  const auto profiled = profiler.profile(model, m60(), model.max_batch);
  const double analytic_fbr = gpu_fbr(model, m60(), model.max_batch);
  EXPECT_NEAR(profiled.fbr, analytic_fbr, 0.08);
  EXPECT_NEAR(profiled.beta, cluster::GpuDeviceConfig{}.beta, 0.12);
  EXPECT_GT(profiled.solo_ms, 0.0);
}

TEST(Profiler, DeterministicForSameSeed) {
  Profiler a(7), b(7);
  const auto& model = resnet50();
  EXPECT_EQ(a.measure_solo_ms(model, m60(), 32), b.measure_solo_ms(model, m60(), 32));
}

}  // namespace
}  // namespace paldia::models
