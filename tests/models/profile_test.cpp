#include "src/models/profile.hpp"

#include <gtest/gtest.h>

#include "src/models/zoo.hpp"

namespace paldia::models {
namespace {

const ModelSpec& resnet50() { return Zoo::instance().spec(ModelId::kResNet50); }
const hw::GpuSpec& v100() {
  return *hw::Catalog::instance().spec(hw::NodeType::kP3_2xlarge).gpu;
}
const hw::GpuSpec& m60() {
  return *hw::Catalog::instance().spec(hw::NodeType::kG3s_xlarge).gpu;
}
const hw::GpuSpec& k80() {
  return *hw::Catalog::instance().spec(hw::NodeType::kP2_xlarge).gpu;
}

TEST(Profile, SoloAtMaxBatchMatchesCalibration) {
  const auto& model = resnet50();
  EXPECT_NEAR(gpu_solo_ms(model, v100(), model.max_batch), model.solo_v100_ms, 1e-9);
}

TEST(Profile, SoloMonotoneInBatchSize) {
  const auto& model = resnet50();
  double previous = 0.0;
  for (int bs = 1; bs <= model.max_batch; ++bs) {
    const double solo = gpu_solo_ms(model, v100(), bs);
    EXPECT_GT(solo, previous);
    previous = solo;
  }
}

TEST(Profile, WimpierGpuIsSlower) {
  const auto& model = resnet50();
  for (int bs : {1, 8, 64}) {
    EXPECT_GT(gpu_solo_ms(model, m60(), bs), gpu_solo_ms(model, v100(), bs));
    EXPECT_GT(gpu_solo_ms(model, k80(), bs), gpu_solo_ms(model, m60(), bs));
  }
}

TEST(Profile, FbrHigherOnLowerBandwidthGpus) {
  const auto& model = resnet50();
  const int bs = model.max_batch;
  EXPECT_GT(gpu_fbr(model, m60(), bs), gpu_fbr(model, v100(), bs));
}

TEST(Profile, FbrCappedWithSoloStretch) {
  const auto& bert = Zoo::instance().spec(ModelId::kBert);
  // BERT's FBR on the M60 would exceed the cap; the solo time must stretch
  // to compensate (bandwidth-bound execution).
  EXPECT_DOUBLE_EQ(gpu_fbr(bert, m60(), bert.max_batch), kMaxFbr);
  const double v100_solo = gpu_solo_ms(bert, v100(), bert.max_batch);
  const double speed_ratio = v100().speed / m60().speed;
  EXPECT_GT(gpu_solo_ms(bert, m60(), bert.max_batch), v100_solo * speed_ratio);
}

TEST(Profile, FbrScalesDownWithSmallBatches) {
  const auto& model = resnet50();
  EXPECT_LT(gpu_fbr(model, v100(), 1), gpu_fbr(model, v100(), model.max_batch));
}

TEST(Profile, CpuSoloLinearInBatch) {
  const auto& model = resnet50();
  const auto& cpu = hw::Catalog::instance().spec(hw::NodeType::kC6i_4xlarge).cpu;
  const double one = cpu_solo_ms(model, cpu, 1);
  const double ten = cpu_solo_ms(model, cpu, 10);
  EXPECT_NEAR(ten - kCpuFixedOverheadMs, (one - kCpuFixedOverheadMs) * 10.0, 1e-6);
}

TEST(Profile, FewerVcpusAreSlower) {
  const auto& model = resnet50();
  const auto& c16 = hw::Catalog::instance().spec(hw::NodeType::kC6i_4xlarge).cpu;
  const auto& c8 = hw::Catalog::instance().spec(hw::NodeType::kC6i_2xlarge).cpu;
  const auto& m4 = hw::Catalog::instance().spec(hw::NodeType::kM4_xlarge).cpu;
  EXPECT_LT(cpu_solo_ms(model, c16, 4), cpu_solo_ms(model, c8, 4));
  EXPECT_LT(cpu_solo_ms(model, c8, 4), cpu_solo_ms(model, m4, 4));
}

TEST(Profile, PaperCpuThroughputCeiling) {
  // Section IV-A: CPU nodes handle "up to ~25 rps for workloads with high
  // FBRs". ResNet 50 on the c6i.4xlarge must peak in that neighbourhood.
  ProfileTable table;
  const Rps cap =
      table.peak_solo_throughput(resnet50(), hw::NodeType::kC6i_4xlarge);
  EXPECT_GT(cap, 20.0);
  EXPECT_LT(cap, 55.0);
}

TEST(ProfileTable, LookupGpuVsCpu) {
  ProfileTable table;
  const auto gpu_entry = table.lookup(resnet50(), hw::NodeType::kP3_2xlarge, 32);
  EXPECT_GT(gpu_entry.fbr, 0.0);
  const auto cpu_entry = table.lookup(resnet50(), hw::NodeType::kC6i_2xlarge, 2);
  EXPECT_EQ(cpu_entry.fbr, 0.0);
  EXPECT_GT(cpu_entry.solo_ms, 0.0);
}

TEST(ProfileTable, MaxBatchWithinBudget) {
  ProfileTable table;
  const auto& model = resnet50();
  const int fit = table.max_batch_within(model, hw::NodeType::kG3s_xlarge, 200.0);
  ASSERT_GT(fit, 0);
  EXPECT_LE(table.lookup(model, hw::NodeType::kG3s_xlarge, fit).solo_ms, 200.0);
  if (fit < model.max_batch) {
    EXPECT_GT(table.lookup(model, hw::NodeType::kG3s_xlarge, fit + 1).solo_ms, 200.0);
  }
}

TEST(ProfileTable, MaxBatchZeroWhenNothingFits) {
  ProfileTable table;
  const auto& bert = Zoo::instance().spec(ModelId::kBert);
  EXPECT_EQ(table.max_batch_within(bert, hw::NodeType::kM4_xlarge, 200.0), 0);
}

TEST(ProfileTable, BatchExecutionLatencyInPaperBand) {
  // Section V: batch sizes are selected so batch latency stays in
  // ~50-200 ms. Every vision model's max batch on the V100 must fit the
  // band (language models sit near the top on their serving hardware).
  ProfileTable table;
  for (ModelId id : Zoo::instance().vision_models()) {
    const auto& model = Zoo::instance().spec(id);
    const auto entry = table.lookup(model, hw::NodeType::kP3_2xlarge, model.max_batch);
    EXPECT_GE(entry.solo_ms, 15.0) << model.name;
    EXPECT_LE(entry.solo_ms, 200.0) << model.name;
  }
}

// Parameterized sweep: the analytic envelope must be internally consistent
// for every (model, GPU) pair.
class ProfileSweep
    : public ::testing::TestWithParam<std::tuple<int, hw::NodeType>> {};

TEST_P(ProfileSweep, EnvelopeInvariants) {
  const auto [model_index, node] = GetParam();
  const auto& model = Zoo::instance().spec(ModelId(model_index));
  ProfileTable table;
  double previous_solo = 0.0;
  for (int bs = 1; bs <= model.max_batch; bs *= 2) {
    const auto entry = table.lookup(model, node, bs);
    EXPECT_GT(entry.solo_ms, previous_solo);
    previous_solo = entry.solo_ms;
    if (hw::Catalog::instance().spec(node).is_gpu()) {
      EXPECT_GT(entry.fbr, 0.0);
      EXPECT_LE(entry.fbr, kMaxFbr);
    }
    // Per-request efficiency improves with batching.
    if (bs > 1) {
      EXPECT_LT(entry.solo_ms / bs, table.lookup(model, node, 1).solo_ms);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllNodes, ProfileSweep,
    ::testing::Combine(::testing::Range(0, models::kModelCount),
                       ::testing::Values(hw::NodeType::kP3_2xlarge,
                                         hw::NodeType::kP2_xlarge,
                                         hw::NodeType::kG3s_xlarge,
                                         hw::NodeType::kC6i_4xlarge)));

}  // namespace
}  // namespace paldia::models
