// log_message must be safe to call from many threads at once: every line
// reaches the sink intact (no interleaving, no tearing) exactly once.
#include "src/common/log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace paldia {
namespace {

std::mutex g_capture_mutex;
std::vector<std::string> g_captured;

void capture_sink(const std::string& line) {
  std::lock_guard lock(g_capture_mutex);
  g_captured.push_back(line);
}

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_captured.clear();
    previous_sink_ = set_log_sink(&capture_sink);
    previous_level_ = log_level();
    set_log_level(LogLevel::kDebug);
  }
  void TearDown() override {
    set_log_sink(previous_sink_);
    set_log_level(previous_level_);
  }

 private:
  LogSink previous_sink_ = nullptr;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LogTest, FormatsLevelPrefixAndNewline) {
  log_info("hello ", 42);
  log_error("boom");
  ASSERT_EQ(g_captured.size(), 2u);
  EXPECT_EQ(g_captured[0], "[INFO] hello 42\n");
  EXPECT_EQ(g_captured[1], "[ERROR] boom\n");
}

TEST_F(LogTest, RespectsThreshold) {
  set_log_level(LogLevel::kWarn);
  log_debug("dropped");
  log_info("dropped too");
  log_warn("kept");
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_EQ(g_captured[0], "[WARN] kept\n");
}

TEST_F(LogTest, ConcurrentWritersNeverInterleaveLines) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        // Long payload so a torn write would be visible.
        log_info("thread=", t, " line=", i, " ",
                 std::string(200, static_cast<char>('a' + t)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(g_captured.size(),
            static_cast<std::size_t>(kThreads * kLinesPerThread));
  std::vector<int> per_thread(kThreads, 0);
  for (const auto& line : g_captured) {
    // Exactly one '\n', at the end: lines arrived whole.
    ASSERT_EQ(std::count(line.begin(), line.end(), '\n'), 1) << line;
    ASSERT_EQ(line.back(), '\n') << line;
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[INFO] thread=%d line=%d", &t, &i), 2)
        << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    // The filler must be homogeneous — a torn write would mix letters.
    const char expected = static_cast<char>('a' + t);
    const auto filler = line.substr(line.find_last_of(' ') + 1);
    ASSERT_EQ(filler.size(), 201u) << line;  // 200 chars + '\n'
    for (std::size_t k = 0; k + 1 < filler.size(); ++k) {
      ASSERT_EQ(filler[k], expected) << line;
    }
    ++per_thread[t];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kLinesPerThread) << "thread " << t;
  }
}

}  // namespace
}  // namespace paldia
