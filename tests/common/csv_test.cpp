#include "src/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paldia {
namespace {

TEST(CsvWriter, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"a", "b"});
  writer.row({"1", "2"});
  writer.row({"x", "y"});
  EXPECT_EQ(out.str(), "a,b\n1,2\nx,y\n");
}

TEST(CsvWriter, NumericCells) {
  EXPECT_EQ(CsvWriter::cell(std::int64_t{42}), "42");
  EXPECT_EQ(CsvWriter::cell(1.5), "1.5");
}

TEST(CsvParse, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"scheme", "slo", "cost"});
  writer.row({"Paldia", "0.995", "0.33"});
  writer.row({"INFless", "0.894", "0.32"});

  const CsvTable table = parse_csv(out.str());
  ASSERT_EQ(table.columns.size(), 3u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][0], "Paldia");
  EXPECT_EQ(table.rows[1][2], "0.32");
}

TEST(CsvParse, ColumnIndex) {
  const CsvTable table = parse_csv("a,b,c\n1,2,3\n");
  EXPECT_EQ(table.column_index("b"), 1u);
  EXPECT_EQ(table.column_index("missing"), static_cast<std::size_t>(-1));
}

TEST(CsvParse, QuotedCells) {
  const CsvTable table = parse_csv("name,value\n\"hello, world\",5\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "hello, world");
}

TEST(CsvParse, EscapedQuote) {
  const CsvTable table = parse_csv("a\n\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "say \"hi\"");
}

TEST(CsvParse, ToleratesCarriageReturns) {
  const CsvTable table = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][1], "2");
}

TEST(CsvParse, SkipsEmptyLines) {
  const CsvTable table = parse_csv("a\n\n1\n\n2\n");
  EXPECT_EQ(table.rows.size(), 2u);
}

TEST(CsvParse, EmptyInput) {
  const CsvTable table = parse_csv("");
  EXPECT_TRUE(table.columns.empty());
  EXPECT_TRUE(table.rows.empty());
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace paldia
