#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace paldia {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, SingleWorkerFallsBackToCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, MinReductionDeterministicAcrossPoolSizes) {
  // The y-sweep use case: results must not depend on worker count.
  std::vector<double> values(503);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000.0 - 3.0 * static_cast<double>(i % 97);
  }
  auto run = [&](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(values.size());
    pool.parallel_for(values.size(), [&](std::size_t i) { out[i] = values[i] * 2.0; });
    return *std::min_element(out.begin(), out.end());
  };
  const double expected = run(1);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(4), expected);
  EXPECT_EQ(run(8), expected);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

}  // namespace
}  // namespace paldia
