#include "src/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace paldia {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForSingleItemRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, SingleWorkerFallsBackToCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(seen.size(),
                    [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, MinReductionDeterministicAcrossPoolSizes) {
  // The y-sweep use case: results must not depend on worker count.
  std::vector<double> values(503);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000.0 - 3.0 * static_cast<double>(i % 97);
  }
  auto run = [&](std::size_t workers) {
    ThreadPool pool(workers);
    std::vector<double> out(values.size());
    pool.parallel_for(values.size(), [&](std::size_t i) { out[i] = values[i] * 2.0; });
    return *std::min_element(out.begin(), out.end());
  };
  const double expected = run(1);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(4), expected);
  EXPECT_EQ(run(8), expected);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // The selection -> y-sweep shape: every outer task re-enters the same
  // pool. With batch-global completion tracking this deadlocked (the inner
  // wait counted the caller's own still-running task).
  ThreadPool pool(4);
  std::atomic<int> inner_hits{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(64, [&](std::size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 8 * 64);
}

TEST(ThreadPool, DeeplyNestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

TEST(ThreadPool, NestedResultsLandInFixedSlots) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> grid(16, std::vector<int>(100, -1));
  pool.parallel_for(grid.size(), [&](std::size_t i) {
    pool.parallel_for(grid[i].size(), [&](std::size_t j) {
      grid[i][j] = static_cast<int>(i * 1000 + j);
    });
  });
  for (std::size_t i = 0; i < grid.size(); ++i) {
    for (std::size_t j = 0; j < grid[i].size(); ++j) {
      ASSERT_EQ(grid[i][j], static_cast<int>(i * 1000 + j));
    }
  }
}

TEST(ThreadPool, ConcurrentTopLevelCallersAreIsolated) {
  // Two external threads drive independent parallel_for batches on one
  // pool; each caller must see exactly its own batch complete (the old
  // global in_flight_ counter let one caller return on the other's work).
  ThreadPool pool(4);
  constexpr int kRounds = 25;
  constexpr std::size_t kItems = 64;
  auto driver = [&](std::atomic<int>& counter) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<int> slots(kItems, 0);
      pool.parallel_for(kItems, [&](std::size_t i) { slots[i] = 1; });
      int sum = 0;
      for (int s : slots) sum += s;
      // parallel_for returned, so every slot of *this* batch must be set.
      ASSERT_EQ(sum, static_cast<int>(kItems));
      counter.fetch_add(sum);
    }
  };
  std::atomic<int> a{0}, b{0};
  std::thread ta([&] { driver(a); });
  std::thread tb([&] { driver(b); });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), kRounds * static_cast<int>(kItems));
  EXPECT_EQ(b.load(), kRounds * static_cast<int>(kItems));
}

TEST(ThreadPool, SubmitInsideTaskThenWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace paldia
