#include "src/common/arena.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.hpp"

namespace paldia::common {
namespace {

using IntArena = Arena<int>;
using IntBlock = ArenaBlock<int>;

TEST(Arena, AcquireGivesEmptyVectorLikeBlock) {
  IntArena arena;
  IntBlock block = arena.acquire();
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.size(), 0u);
  block.push_back(7);
  block.push_back(9);
  ASSERT_EQ(block.size(), 2u);
  EXPECT_EQ(block[0], 7);
  EXPECT_EQ(block.front(), 7);
  EXPECT_EQ(block.back(), 9);
  int sum = 0;
  for (int v : block) sum += v;
  EXPECT_EQ(sum, 16);
}

TEST(Arena, AppendBulkCopies) {
  IntArena arena;
  IntBlock block = arena.acquire();
  const int data[] = {1, 2, 3, 4, 5};
  block.append(data, 5);
  block.append(data, 0);  // no-op
  ASSERT_EQ(block.size(), 5u);
  EXPECT_TRUE(std::equal(block.begin(), block.end(), data));
}

TEST(Arena, ReleaseRecyclesSlabWithCapacityRetained) {
  IntArena arena;
  {
    IntBlock block = arena.acquire();
    for (int i = 0; i < 1000; ++i) block.push_back(i);
  }  // destructor releases
  EXPECT_EQ(arena.stats().releases, 1u);
  IntBlock again = arena.acquire();
  EXPECT_TRUE(again.empty());  // cleared...
  EXPECT_EQ(arena.stats().reuses, 1u);    // ...but served from the free list
  EXPECT_EQ(arena.stats().slots, 1u);     // no second slab was created
}

TEST(Arena, BypassModeDropsStorageButKeepsSemantics) {
  IntArena arena(/*pooling=*/false);
  EXPECT_FALSE(arena.pooling());
  {
    IntBlock block = arena.acquire();
    block.push_back(1);
  }
  IntBlock again = arena.acquire();
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(arena.stats().reuses, 1u);  // slot bookkeeping identical to pooled
}

TEST(Arena, DoubleReleaseIsCountedNoop) {
  IntArena arena;
  IntBlock block = arena.acquire();
  block.release();
  EXPECT_EQ(arena.stats().releases, 1u);
  block.release();  // explicit second release: no-op, not double-free
  EXPECT_EQ(arena.stats().releases, 1u);
  EXPECT_EQ(arena.stats().stale_releases, 0u);  // handle already nulled
}

TEST(Arena, MovedFromBlockDoesNotReleaseTwice) {
  IntArena arena;
  IntBlock a = arena.acquire();
  a.push_back(3);
  IntBlock b = std::move(a);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 3);
  a.release();  // stale handle: must not free b's slab
  EXPECT_EQ(arena.stats().releases, 0u);
  b.release();
  EXPECT_EQ(arena.stats().releases, 1u);
}

TEST(Arena, MoveAssignReleasesPreviousBlock) {
  IntArena arena;
  IntBlock a = arena.acquire();
  IntBlock b = arena.acquire();
  b = std::move(a);  // b's original slab returns to the free list
  EXPECT_EQ(arena.stats().releases, 1u);
  b.release();
  EXPECT_EQ(arena.stats().releases, 2u);
}

TEST(Arena, ResetInvalidatesOutstandingHandles) {
  IntArena arena;
  IntBlock stale = arena.acquire();
  arena.reset();
  // The slab was reclaimed by reset(); this release must be a counted
  // no-op, not a second push onto the free list.
  stale.release();
  EXPECT_EQ(arena.stats().stale_releases, 1u);
  EXPECT_EQ(arena.stats().releases, 0u);
  // The free list after reset holds exactly one slot; two acquisitions must
  // yield two distinct slabs (a corrupted list would hand out one twice).
  IntBlock x = arena.acquire();
  IntBlock y = arena.acquire();
  x.push_back(1);
  y.push_back(2);
  EXPECT_NE(x.data(), y.data());
  EXPECT_EQ(arena.stats().slots, 2u);
}

TEST(Arena, GenerationsMakeAbaReleaseSafe) {
  IntArena arena;
  IntBlock first = arena.acquire();
  arena.reset();
  IntBlock second = arena.acquire();  // same slot, bumped generation
  second.push_back(42);
  first.release();  // stale generation: must not free second's slab
  EXPECT_EQ(arena.stats().stale_releases, 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 42);
}

TEST(Arena, DefaultConstructedBlockIsInertEverywhere) {
  IntBlock block;
  EXPECT_TRUE(block.empty());
  EXPECT_EQ(block.data(), nullptr);
  EXPECT_EQ(block.arena(), nullptr);
  block.clear();    // all safe on a null buffer
  block.release();
  IntBlock other = std::move(block);
  EXPECT_TRUE(other.empty());
}

// Randomized churn: the arena driven against a brute-force reference model
// (plain std::vector per live block) through acquire / push / append /
// release / move / reset, mirroring the EventQueue churn test.
TEST(Arena, RandomizedChurnMatchesReferenceModel) {
  IntArena arena;
  Rng rng(0xA7E7A);
  struct Live {
    IntBlock block;
    std::vector<int> reference;
  };
  std::vector<Live> live;
  std::uint64_t expected_stale = 0;
  int next_value = 0;
  for (int step = 0; step < 5000; ++step) {
    const int op = static_cast<int>(rng.uniform(0.0, 6.0));
    switch (op) {
      case 0: {  // acquire a new block
        if (live.size() >= 64) break;
        live.push_back(Live{arena.acquire(), {}});
        break;
      }
      case 1: {  // push into a random live block
        if (live.empty()) break;
        auto& target = live[static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(live.size())))];
        target.block.push_back(next_value);
        target.reference.push_back(next_value);
        ++next_value;
        break;
      }
      case 2: {  // bulk append
        if (live.empty()) break;
        auto& target = live[static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(live.size())))];
        int data[7];
        const int n = 1 + static_cast<int>(rng.uniform(0.0, 7.0));
        for (int i = 0; i < n; ++i) data[i] = next_value++;
        target.block.append(data, static_cast<std::size_t>(n));
        target.reference.insert(target.reference.end(), data, data + n);
        break;
      }
      case 3: {  // release a random block
        if (live.empty()) break;
        const auto index = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(live.size())));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(index));
        break;
      }
      case 4: {  // move a block within the model (handle churn)
        if (live.empty()) break;
        auto& target = live[static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(live.size())))];
        IntBlock moved = std::move(target.block);
        target.block = std::move(moved);
        break;
      }
      default: {  // occasional reset: every live handle goes stale
        if (rng.uniform(0.0, 1.0) > 0.02) break;
        expected_stale += live.size();  // their destructors release stalely
        arena.reset();
        live.clear();  // destructors now see bumped generations
        break;
      }
    }
    // Verify every live block against its reference model.
    for (const auto& entry : live) {
      ASSERT_EQ(entry.block.size(), entry.reference.size());
      ASSERT_TRUE(std::equal(entry.block.begin(), entry.block.end(),
                             entry.reference.begin()));
    }
  }
  live.clear();  // remaining blocks release normally, not stalely
  EXPECT_EQ(arena.stats().stale_releases, expected_stale);
  // Every acquisition is accounted for: released normally or invalidated
  // by a reset (whose handle destructor then counts as stale).
  EXPECT_EQ(arena.stats().acquires,
            arena.stats().releases + arena.stats().stale_releases);
  // Slab count stays bounded by peak concurrency, not total acquisitions.
  EXPECT_LE(arena.stats().slots, 64u);
}

}  // namespace
}  // namespace paldia::common
