#include "src/common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace paldia {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_EQ(mean({}), 0.0);
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NEAR(mean(v), 2.0, 1e-12);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 4.0, 1e-12);
  EXPECT_NEAR(stddev(v), 2.0, 1e-12);
  EXPECT_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_EQ(min_value(v), -1.0);
  EXPECT_EQ(max_value(v), 7.0);
  EXPECT_EQ(min_value({}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_NEAR(quantile(v, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(quantile(v, 1.0), 40.0, 1e-12);
  EXPECT_NEAR(quantile(v, 0.5), 25.0, 1e-12);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_NEAR(quantile(v, 0.5), 25.0, 1e-12);
}

TEST(Stats, OutlierFilteredMeanDropsOutliers) {
  // 20 samples at ~10 plus one wild outlier; the paper's 2.5-sigma rule
  // should exclude it.
  std::vector<double> v(20, 10.0);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += (i % 2 == 0 ? 0.1 : -0.1);
  v.push_back(1000.0);
  const double filtered = outlier_filtered_mean(v);
  EXPECT_NEAR(filtered, 10.0, 0.2);
  EXPECT_GT(mean(v), 50.0);  // raw mean is dominated by the outlier
}

TEST(Stats, OutlierFilteredMeanNoVariance) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  EXPECT_EQ(outlier_filtered_mean(v), 5.0);
}

TEST(Stats, OutlierFilteredMeanEmpty) {
  EXPECT_EQ(outlier_filtered_mean({}), 0.0);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> v{1.0, 4.0, 9.0, 16.0, 25.0};
  RunningStats rs;
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-9);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 25.0);
}

TEST(RunningStats, MergeEquivalentToCombined) {
  RunningStats a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37;
    combined.add(x);
    (i < 60 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

}  // namespace
}  // namespace paldia
