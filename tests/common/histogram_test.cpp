#include "src/common/histogram.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"
#include "src/common/stats.hpp"

namespace paldia {
namespace {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.fraction_at_or_below(100.0), 1.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.quantile(0.5), 42.0, Histogram::kLinearBucketMs);
  EXPECT_NEAR(h.mean(), 42.0, 1e-9);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
}

TEST(Histogram, BulkCount) {
  Histogram h;
  h.add(10.0, 1000);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 10.0, 1e-9);
}

TEST(Histogram, QuantileAccuracyInLinearRegion) {
  Histogram h;
  Rng rng(1);
  std::vector<double> exact;
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.uniform(0.0, 400.0);
    h.add(v);
    exact.push_back(v);
  }
  // One sort of the sample, one scan of the histogram, all probes.
  const std::vector<double> qs = {0.5, 0.9, 0.99, 0.999};
  const auto truth = quantiles(exact, qs);
  const auto approx = h.quantiles(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(approx[i], truth[i], 1.0) << "quantile " << qs[i] << " drifted";
    EXPECT_EQ(approx[i], h.quantile(qs[i])) << "batched vs single mismatch";
  }
}

TEST(Histogram, QuantileRelativeErrorInExponentialRegion) {
  Histogram h;
  Rng rng(2);
  std::vector<double> exact;
  for (int i = 0; i < 100'000; ++i) {
    const double v = rng.uniform(1000.0, 100'000.0);
    h.add(v);
    exact.push_back(v);
  }
  const std::vector<double> qs = {0.5, 0.95, 0.99};
  const auto truth = quantiles(exact, qs);
  const auto approx = h.quantiles(qs);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(approx[i], truth[i], truth[i] * 0.05);
    EXPECT_EQ(approx[i], h.quantile(qs[i])) << "batched vs single mismatch";
  }
}

TEST(Histogram, FractionAtOrBelowMatchesSloSemantics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));  // 1..100 ms
  // 100 values; threshold at 50 ms should report ~50%.
  EXPECT_NEAR(h.fraction_at_or_below(50.0), 0.5, 0.02);
  EXPECT_NEAR(h.fraction_at_or_below(200.0), 1.0, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(0.0), 0.0, 0.02);
}

TEST(Histogram, MergeEqualsCombinedStream) {
  Histogram a, b, combined;
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.lognormal(3.0, 1.0);
    combined.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_EQ(a.quantile(0.99), combined.quantile(0.99));
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(5.0, 10);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  Rng rng(4);
  for (int i = 0; i < 5'000; ++i) h.add(rng.lognormal(4.0, 0.7));
  const auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double last_value = -1.0, last_fraction = -1.0;
  for (const auto& [value, fraction] : cdf) {
    EXPECT_GT(value, last_value);
    EXPECT_GE(fraction, last_fraction);
    last_value = value;
    last_fraction = fraction;
  }
  EXPECT_NEAR(cdf.back().second, 1.0, 1e-12);
}

TEST(Histogram, NegativeValuesClampToZeroBucket) {
  Histogram h;
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_LE(h.quantile(1.0), Histogram::kLinearBucketMs);
}

TEST(Histogram, ValuesBeyondMaxTrackable) {
  Histogram h;
  h.add(1e9);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.quantile(1.0), Histogram::kMaxTrackableMs * 0.9);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  Histogram h;
  h.add(100.0);
  h.add(200.0);
  EXPECT_GE(h.quantile(0.0), 100.0 - Histogram::kLinearBucketMs);
  EXPECT_LE(h.quantile(1.0), 200.0 + Histogram::kLinearBucketMs);
}

}  // namespace
}  // namespace paldia
