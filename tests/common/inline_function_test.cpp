#include "src/common/inline_function.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>

namespace paldia {
namespace {

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  InlineFunction<int()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(InlineFunction, InvokesWithArgumentsAndResult) {
  InlineFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_TRUE(static_cast<bool>(add));
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunction, MutableStatePersistsAcrossCalls) {
  InlineFunction<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  EXPECT_EQ(counter(), 3);
}

TEST(InlineFunction, MoveTransfersCallable) {
  InlineFunction<int()> source = [n = 41]() mutable { return ++n; };
  InlineFunction<int()> target = std::move(source);
  EXPECT_FALSE(static_cast<bool>(source));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(target(), 42);

  InlineFunction<int()> assigned;
  assigned = std::move(target);
  EXPECT_EQ(assigned(), 43);  // counter state moved along
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  auto boxed = std::make_unique<int>(7);
  InlineFunction<int()> fn = [boxed = std::move(boxed)] { return *boxed; };
  EXPECT_EQ(fn(), 7);
  InlineFunction<int()> moved = std::move(fn);
  EXPECT_EQ(moved(), 7);
}

TEST(InlineFunction, LargeCaptureFallsBackToHeap) {
  // Captures beyond the inline budget still work (stored via one heap
  // allocation), and survive moves of the wrapper.
  struct Big {
    double values[16];  // 128 B > kInlineFunctionBytes
  };
  Big big{};
  big.values[0] = 1.5;
  big.values[15] = 2.5;
  InlineFunction<double()> fn = [big] { return big.values[0] + big.values[15]; };
  EXPECT_EQ(fn(), 4.0);
  InlineFunction<double()> moved = std::move(fn);
  EXPECT_EQ(moved(), 4.0);
}

class DestructionProbe {
 public:
  explicit DestructionProbe(int* counter) : counter_(counter) {}
  DestructionProbe(DestructionProbe&& other) noexcept
      : counter_(std::exchange(other.counter_, nullptr)) {}
  DestructionProbe(const DestructionProbe&) = delete;
  ~DestructionProbe() {
    if (counter_ != nullptr) ++*counter_;
  }

 private:
  int* counter_;
};

TEST(InlineFunction, DestroysCaptureExactlyOnce) {
  int destroyed = 0;
  {
    InlineFunction<void()> fn = [probe = DestructionProbe(&destroyed)] {};
    fn();
    InlineFunction<void()> moved = std::move(fn);
    moved();
    EXPECT_EQ(destroyed, 0);  // alive until the owning wrapper dies
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, AssignmentDestroysPreviousCapture) {
  int destroyed = 0;
  InlineFunction<void()> fn = [probe = DestructionProbe(&destroyed)] {};
  fn = InlineFunction<void()>([] {});
  EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, SmallCaptureStaysInline) {
  // A capture within the budget must not allocate: pin it by checking the
  // closure's address lands inside the wrapper object itself.
  struct Probe {
    const void* self = nullptr;
    int pad[4] = {};
    const void* where() const { return this; }
  };
  static_assert(sizeof(Probe) <= kInlineFunctionBytes);
  Probe probe;
  InlineFunction<const void*()> fn = [probe]() { return probe.where(); };
  const void* closure = fn();
  const auto* begin = reinterpret_cast<const std::byte*>(&fn);
  const auto* end = begin + sizeof(fn);
  const auto* at = reinterpret_cast<const std::byte*>(closure);
  EXPECT_TRUE(at >= begin && at < end);
}

}  // namespace
}  // namespace paldia
