#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace paldia {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicInLabel) {
  Rng parent(7);
  Rng c1 = parent.fork("gpu");
  Rng c2 = parent.fork("gpu");
  Rng c3 = parent.fork("cpu");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  EXPECT_NE(c1.next_u64(), c3.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double total = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(17);
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const double rate = 0.25;
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  const double mean = 3.5;
  const int n = 100'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(29);
  const double mean = 500.0;
  const int n = 20'000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(37);
  const int n = 100'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, HashLabelStable) {
  EXPECT_EQ(hash_label("gpu"), hash_label("gpu"));
  EXPECT_NE(hash_label("gpu"), hash_label("cpu"));
}

// Property-style sweep: lognormal median should be exp(mu) across parameter
// combinations.
class LognormalSweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LognormalSweep, MedianMatches) {
  const auto [mu, sigma] = GetParam();
  Rng rng(41);
  std::vector<double> samples;
  const int n = 50'001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(mu, sigma));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], std::exp(mu), std::exp(mu) * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Params, LognormalSweep,
                         ::testing::Values(std::pair{0.0, 0.2}, std::pair{1.0, 0.5},
                                           std::pair{-0.5, 0.1}, std::pair{0.5, 1.0}));

}  // namespace
}  // namespace paldia
