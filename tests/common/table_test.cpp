#include "src/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace paldia {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table table({"Scheme", "SLO"});
  table.add_row({"Paldia", "99.5%"});
  table.add_row({"INFless/Llama ($)", "89.4%"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| Scheme "), std::string::npos);
  EXPECT_NE(text.find("| Paldia "), std::string::npos);
  // Every line has the same length (aligned columns).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("| 1 "), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(Table::percent(0.995, 1), "99.5%");
  EXPECT_EQ(Table::percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace paldia
