// Unit tests for the minimal JSON parser behind `paldia-analyze`: scalars,
// nesting, escapes, error positions, and the JSONL line reader.
#include "src/common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace paldia::common {
namespace {

TEST(JsonParser, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").value.is_null());
  EXPECT_EQ(parse_json("true").value.as_bool(), true);
  EXPECT_EQ(parse_json("false").value.as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").value.as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25e2").value.as_number(), -325.0);
  EXPECT_EQ(parse_json("\"hi\"").value.as_string(), "hi");
}

TEST(JsonParser, ParsesNestedStructures) {
  const auto result = parse_json(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(result.ok) << result.error;
  const JsonValue& root = result.value;
  ASSERT_TRUE(root.is_object());
  const JsonValue* a = root.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.0);
  const JsonValue* b = a->as_array()[2].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->as_string(), "c");
  EXPECT_TRUE(root.find("d")->find("e")->is_null());
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParser, ObjectPreservesInsertionOrder) {
  const auto result = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(result.ok);
  const JsonObject& object = result.value.as_object();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "z");
  EXPECT_EQ(object[1].first, "a");
  EXPECT_EQ(object[2].first, "m");
}

TEST(JsonParser, DecodesStringEscapes) {
  const auto result = parse_json(R"("line\n\ttab \"q\" back\\slash A")");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.value.as_string(), "line\n\ttab \"q\" back\\slash A");
}

TEST(JsonParser, ReportsErrorsWithLineNumbers) {
  const auto result = parse_json("{\"a\": 1,\n\"b\": }");
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("line 2"), std::string::npos) << result.error;

  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("[1, 2").ok);
  EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
  EXPECT_FALSE(parse_json("nul").ok);
  EXPECT_FALSE(parse_json("-").ok);
  EXPECT_FALSE(parse_json("\"open").ok);
}

TEST(JsonParser, TrailingInputIsAllowedAndEndReported) {
  // JSONL streaming contract: parse one value, report where it ended.
  const auto result = parse_json("42 {\"next\": 1}");
  ASSERT_TRUE(result.ok);
  EXPECT_DOUBLE_EQ(result.value.as_number(), 42.0);
  const auto next = parse_json("42 {\"next\": 1}", result.end);
  ASSERT_TRUE(next.ok);
  EXPECT_DOUBLE_EQ(next.value.number_or("next", 0.0), 1.0);
}

TEST(JsonParser, ConvenienceAccessorsUseDefaults) {
  const auto result = parse_json(R"({"n": 7, "s": "x", "b": true})");
  ASSERT_TRUE(result.ok);
  const JsonValue& root = result.value;
  EXPECT_DOUBLE_EQ(root.number_or("n", -1.0), 7.0);
  EXPECT_DOUBLE_EQ(root.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(root.string_or("s", "d"), "x");
  EXPECT_EQ(root.string_or("missing", "d"), "d");
  EXPECT_TRUE(root.bool_or("b", false));
  EXPECT_FALSE(root.bool_or("missing", false));
  // Type mismatch falls back to the default too.
  EXPECT_DOUBLE_EQ(root.number_or("s", -1.0), -1.0);
}

TEST(JsonParser, JsonLinesSkipsBlanksAndTrimsCr) {
  const auto result = parse_json_lines("{\"a\":1}\r\n\n{\"a\":2}\n");
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(result.rows[0].number_or("a", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(result.rows[1].number_or("a", 0.0), 2.0);
}

TEST(JsonParser, JsonLinesStopsAtFirstMalformedLine) {
  const auto result = parse_json_lines("{\"a\":1}\nnot json\n{\"a\":3}\n");
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.rows.size(), 1u);
}

}  // namespace
}  // namespace paldia::common
