# Empty dependencies file for fig08_utilization.
# This may be replaced when dependencies are built.
