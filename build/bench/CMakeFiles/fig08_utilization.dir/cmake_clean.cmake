file(REMOVE_RECURSE
  "CMakeFiles/fig08_utilization.dir/fig08_utilization.cpp.o"
  "CMakeFiles/fig08_utilization.dir/fig08_utilization.cpp.o.d"
  "fig08_utilization"
  "fig08_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
