file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_llm.dir/fig09_10_llm.cpp.o"
  "CMakeFiles/fig09_10_llm.dir/fig09_10_llm.cpp.o.d"
  "fig09_10_llm"
  "fig09_10_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
