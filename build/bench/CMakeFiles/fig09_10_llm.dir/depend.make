# Empty dependencies file for fig09_10_llm.
# This may be replaced when dependencies are built.
