file(REMOVE_RECURSE
  "CMakeFiles/fig13_adverse.dir/fig13_adverse.cpp.o"
  "CMakeFiles/fig13_adverse.dir/fig13_adverse.cpp.o.d"
  "fig13_adverse"
  "fig13_adverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_adverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
