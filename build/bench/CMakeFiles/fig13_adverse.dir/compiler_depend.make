# Empty compiler generated dependencies file for fig13_adverse.
# This may be replaced when dependencies are built.
