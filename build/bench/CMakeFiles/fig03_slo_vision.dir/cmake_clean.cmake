file(REMOVE_RECURSE
  "CMakeFiles/fig03_slo_vision.dir/fig03_slo_vision.cpp.o"
  "CMakeFiles/fig03_slo_vision.dir/fig03_slo_vision.cpp.o.d"
  "fig03_slo_vision"
  "fig03_slo_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_slo_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
