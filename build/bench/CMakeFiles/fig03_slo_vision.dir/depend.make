# Empty dependencies file for fig03_slo_vision.
# This may be replaced when dependencies are built.
