file(REMOVE_RECURSE
  "CMakeFiles/fig05_cost_vs_slo.dir/fig05_cost_vs_slo.cpp.o"
  "CMakeFiles/fig05_cost_vs_slo.dir/fig05_cost_vs_slo.cpp.o.d"
  "fig05_cost_vs_slo"
  "fig05_cost_vs_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_cost_vs_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
