# Empty dependencies file for fig05_cost_vs_slo.
# This may be replaced when dependencies are built.
