file(REMOVE_RECURSE
  "CMakeFiles/fig11_oracle.dir/fig11_oracle.cpp.o"
  "CMakeFiles/fig11_oracle.dir/fig11_oracle.cpp.o.d"
  "fig11_oracle"
  "fig11_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
