# Empty dependencies file for fig11_oracle.
# This may be replaced when dependencies are built.
