# Empty compiler generated dependencies file for table03_mixed.
# This may be replaced when dependencies are built.
