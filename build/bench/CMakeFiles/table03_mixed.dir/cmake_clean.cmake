file(REMOVE_RECURSE
  "CMakeFiles/table03_mixed.dir/table03_mixed.cpp.o"
  "CMakeFiles/table03_mixed.dir/table03_mixed.cpp.o.d"
  "table03_mixed"
  "table03_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
