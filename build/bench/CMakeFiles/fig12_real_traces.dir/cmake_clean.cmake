file(REMOVE_RECURSE
  "CMakeFiles/fig12_real_traces.dir/fig12_real_traces.cpp.o"
  "CMakeFiles/fig12_real_traces.dir/fig12_real_traces.cpp.o.d"
  "fig12_real_traces"
  "fig12_real_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_real_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
