# Empty compiler generated dependencies file for fig12_real_traces.
# This may be replaced when dependencies are built.
