# Empty dependencies file for fig07_goodput_power.
# This may be replaced when dependencies are built.
