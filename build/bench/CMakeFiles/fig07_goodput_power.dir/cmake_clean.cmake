file(REMOVE_RECURSE
  "CMakeFiles/fig07_goodput_power.dir/fig07_goodput_power.cpp.o"
  "CMakeFiles/fig07_goodput_power.dir/fig07_goodput_power.cpp.o.d"
  "fig07_goodput_power"
  "fig07_goodput_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_goodput_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
