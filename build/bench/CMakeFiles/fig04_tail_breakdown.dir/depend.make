# Empty dependencies file for fig04_tail_breakdown.
# This may be replaced when dependencies are built.
