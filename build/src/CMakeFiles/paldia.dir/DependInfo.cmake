
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/infless_llama.cpp" "src/CMakeFiles/paldia.dir/baselines/infless_llama.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/baselines/infless_llama.cpp.o.d"
  "/root/repo/src/baselines/molecule.cpp" "src/CMakeFiles/paldia.dir/baselines/molecule.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/baselines/molecule.cpp.o.d"
  "/root/repo/src/baselines/offline_hybrid.cpp" "src/CMakeFiles/paldia.dir/baselines/offline_hybrid.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/baselines/offline_hybrid.cpp.o.d"
  "/root/repo/src/baselines/oracle.cpp" "src/CMakeFiles/paldia.dir/baselines/oracle.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/baselines/oracle.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/paldia.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/container.cpp" "src/CMakeFiles/paldia.dir/cluster/container.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/container.cpp.o.d"
  "/root/repo/src/cluster/cpu_executor.cpp" "src/CMakeFiles/paldia.dir/cluster/cpu_executor.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/cpu_executor.cpp.o.d"
  "/root/repo/src/cluster/failure_injector.cpp" "src/CMakeFiles/paldia.dir/cluster/failure_injector.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/failure_injector.cpp.o.d"
  "/root/repo/src/cluster/gpu_device.cpp" "src/CMakeFiles/paldia.dir/cluster/gpu_device.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/gpu_device.cpp.o.d"
  "/root/repo/src/cluster/host_interference.cpp" "src/CMakeFiles/paldia.dir/cluster/host_interference.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/host_interference.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/paldia.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/provisioner.cpp" "src/CMakeFiles/paldia.dir/cluster/provisioner.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/provisioner.cpp.o.d"
  "/root/repo/src/cluster/request.cpp" "src/CMakeFiles/paldia.dir/cluster/request.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/cluster/request.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/paldia.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/paldia.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/paldia.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/paldia.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/paldia.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/paldia.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/paldia.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/autoscaler.cpp" "src/CMakeFiles/paldia.dir/core/autoscaler.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/autoscaler.cpp.o.d"
  "/root/repo/src/core/batcher.cpp" "src/CMakeFiles/paldia.dir/core/batcher.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/batcher.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/CMakeFiles/paldia.dir/core/framework.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/framework.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/CMakeFiles/paldia.dir/core/gateway.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/gateway.cpp.o.d"
  "/root/repo/src/core/hardware_selection.cpp" "src/CMakeFiles/paldia.dir/core/hardware_selection.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/hardware_selection.cpp.o.d"
  "/root/repo/src/core/job_distributor.cpp" "src/CMakeFiles/paldia.dir/core/job_distributor.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/job_distributor.cpp.o.d"
  "/root/repo/src/core/paldia_policy.cpp" "src/CMakeFiles/paldia.dir/core/paldia_policy.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/paldia_policy.cpp.o.d"
  "/root/repo/src/core/scheduler_policy.cpp" "src/CMakeFiles/paldia.dir/core/scheduler_policy.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/core/scheduler_policy.cpp.o.d"
  "/root/repo/src/exp/runner.cpp" "src/CMakeFiles/paldia.dir/exp/runner.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/exp/runner.cpp.o.d"
  "/root/repo/src/exp/scenario.cpp" "src/CMakeFiles/paldia.dir/exp/scenario.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/exp/scenario.cpp.o.d"
  "/root/repo/src/exp/scheme_factory.cpp" "src/CMakeFiles/paldia.dir/exp/scheme_factory.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/exp/scheme_factory.cpp.o.d"
  "/root/repo/src/exp/summary.cpp" "src/CMakeFiles/paldia.dir/exp/summary.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/exp/summary.cpp.o.d"
  "/root/repo/src/hw/catalog.cpp" "src/CMakeFiles/paldia.dir/hw/catalog.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/hw/catalog.cpp.o.d"
  "/root/repo/src/hw/node_spec.cpp" "src/CMakeFiles/paldia.dir/hw/node_spec.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/hw/node_spec.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/CMakeFiles/paldia.dir/hw/power_model.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/hw/power_model.cpp.o.d"
  "/root/repo/src/models/model_spec.cpp" "src/CMakeFiles/paldia.dir/models/model_spec.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/models/model_spec.cpp.o.d"
  "/root/repo/src/models/profile.cpp" "src/CMakeFiles/paldia.dir/models/profile.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/models/profile.cpp.o.d"
  "/root/repo/src/models/profiler.cpp" "src/CMakeFiles/paldia.dir/models/profiler.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/models/profiler.cpp.o.d"
  "/root/repo/src/models/zoo.cpp" "src/CMakeFiles/paldia.dir/models/zoo.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/models/zoo.cpp.o.d"
  "/root/repo/src/perfmodel/cpu_latency_model.cpp" "src/CMakeFiles/paldia.dir/perfmodel/cpu_latency_model.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/perfmodel/cpu_latency_model.cpp.o.d"
  "/root/repo/src/perfmodel/tmax_model.cpp" "src/CMakeFiles/paldia.dir/perfmodel/tmax_model.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/perfmodel/tmax_model.cpp.o.d"
  "/root/repo/src/perfmodel/y_optimizer.cpp" "src/CMakeFiles/paldia.dir/perfmodel/y_optimizer.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/perfmodel/y_optimizer.cpp.o.d"
  "/root/repo/src/predictor/ewma.cpp" "src/CMakeFiles/paldia.dir/predictor/ewma.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/predictor/ewma.cpp.o.d"
  "/root/repo/src/predictor/window.cpp" "src/CMakeFiles/paldia.dir/predictor/window.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/predictor/window.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/paldia.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/paldia.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/telemetry/cost_tracker.cpp" "src/CMakeFiles/paldia.dir/telemetry/cost_tracker.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/cost_tracker.cpp.o.d"
  "/root/repo/src/telemetry/latency_recorder.cpp" "src/CMakeFiles/paldia.dir/telemetry/latency_recorder.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/latency_recorder.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/CMakeFiles/paldia.dir/telemetry/metrics.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/metrics.cpp.o.d"
  "/root/repo/src/telemetry/power_tracker.cpp" "src/CMakeFiles/paldia.dir/telemetry/power_tracker.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/power_tracker.cpp.o.d"
  "/root/repo/src/telemetry/slo_tracker.cpp" "src/CMakeFiles/paldia.dir/telemetry/slo_tracker.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/slo_tracker.cpp.o.d"
  "/root/repo/src/telemetry/util_tracker.cpp" "src/CMakeFiles/paldia.dir/telemetry/util_tracker.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/telemetry/util_tracker.cpp.o.d"
  "/root/repo/src/trace/azure_trace.cpp" "src/CMakeFiles/paldia.dir/trace/azure_trace.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/azure_trace.cpp.o.d"
  "/root/repo/src/trace/csv_io.cpp" "src/CMakeFiles/paldia.dir/trace/csv_io.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/csv_io.cpp.o.d"
  "/root/repo/src/trace/poisson_trace.cpp" "src/CMakeFiles/paldia.dir/trace/poisson_trace.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/poisson_trace.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/paldia.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_ops.cpp" "src/CMakeFiles/paldia.dir/trace/trace_ops.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/trace_ops.cpp.o.d"
  "/root/repo/src/trace/twitter_trace.cpp" "src/CMakeFiles/paldia.dir/trace/twitter_trace.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/twitter_trace.cpp.o.d"
  "/root/repo/src/trace/wiki_trace.cpp" "src/CMakeFiles/paldia.dir/trace/wiki_trace.cpp.o" "gcc" "src/CMakeFiles/paldia.dir/trace/wiki_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
