file(REMOVE_RECURSE
  "libpaldia.a"
)
