# Empty compiler generated dependencies file for paldia.
# This may be replaced when dependencies are built.
