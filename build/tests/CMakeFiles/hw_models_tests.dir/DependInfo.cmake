
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/catalog_test.cpp" "tests/CMakeFiles/hw_models_tests.dir/hw/catalog_test.cpp.o" "gcc" "tests/CMakeFiles/hw_models_tests.dir/hw/catalog_test.cpp.o.d"
  "/root/repo/tests/hw/power_model_test.cpp" "tests/CMakeFiles/hw_models_tests.dir/hw/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/hw_models_tests.dir/hw/power_model_test.cpp.o.d"
  "/root/repo/tests/models/profile_test.cpp" "tests/CMakeFiles/hw_models_tests.dir/models/profile_test.cpp.o" "gcc" "tests/CMakeFiles/hw_models_tests.dir/models/profile_test.cpp.o.d"
  "/root/repo/tests/models/profiler_test.cpp" "tests/CMakeFiles/hw_models_tests.dir/models/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/hw_models_tests.dir/models/profiler_test.cpp.o.d"
  "/root/repo/tests/models/zoo_test.cpp" "tests/CMakeFiles/hw_models_tests.dir/models/zoo_test.cpp.o" "gcc" "tests/CMakeFiles/hw_models_tests.dir/models/zoo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/paldia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
