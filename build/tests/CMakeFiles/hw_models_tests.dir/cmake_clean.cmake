file(REMOVE_RECURSE
  "CMakeFiles/hw_models_tests.dir/hw/catalog_test.cpp.o"
  "CMakeFiles/hw_models_tests.dir/hw/catalog_test.cpp.o.d"
  "CMakeFiles/hw_models_tests.dir/hw/power_model_test.cpp.o"
  "CMakeFiles/hw_models_tests.dir/hw/power_model_test.cpp.o.d"
  "CMakeFiles/hw_models_tests.dir/models/profile_test.cpp.o"
  "CMakeFiles/hw_models_tests.dir/models/profile_test.cpp.o.d"
  "CMakeFiles/hw_models_tests.dir/models/profiler_test.cpp.o"
  "CMakeFiles/hw_models_tests.dir/models/profiler_test.cpp.o.d"
  "CMakeFiles/hw_models_tests.dir/models/zoo_test.cpp.o"
  "CMakeFiles/hw_models_tests.dir/models/zoo_test.cpp.o.d"
  "hw_models_tests"
  "hw_models_tests.pdb"
  "hw_models_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_models_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
