# Empty dependencies file for hw_models_tests.
# This may be replaced when dependencies are built.
