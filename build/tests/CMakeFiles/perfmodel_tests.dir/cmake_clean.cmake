file(REMOVE_RECURSE
  "CMakeFiles/perfmodel_tests.dir/perfmodel/cpu_latency_model_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/cpu_latency_model_test.cpp.o.d"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/model_vs_device_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/model_vs_device_test.cpp.o.d"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/tmax_model_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/tmax_model_test.cpp.o.d"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/y_optimizer_test.cpp.o"
  "CMakeFiles/perfmodel_tests.dir/perfmodel/y_optimizer_test.cpp.o.d"
  "perfmodel_tests"
  "perfmodel_tests.pdb"
  "perfmodel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfmodel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
