
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/autoscaler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/autoscaler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/autoscaler_test.cpp.o.d"
  "/root/repo/tests/core/batcher_test.cpp" "tests/CMakeFiles/core_tests.dir/core/batcher_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/batcher_test.cpp.o.d"
  "/root/repo/tests/core/gateway_test.cpp" "tests/CMakeFiles/core_tests.dir/core/gateway_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/gateway_test.cpp.o.d"
  "/root/repo/tests/core/hardware_selection_test.cpp" "tests/CMakeFiles/core_tests.dir/core/hardware_selection_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hardware_selection_test.cpp.o.d"
  "/root/repo/tests/core/job_distributor_test.cpp" "tests/CMakeFiles/core_tests.dir/core/job_distributor_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/job_distributor_test.cpp.o.d"
  "/root/repo/tests/core/paldia_policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/paldia_policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/paldia_policy_test.cpp.o.d"
  "/root/repo/tests/predictor/ewma_test.cpp" "tests/CMakeFiles/core_tests.dir/predictor/ewma_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/predictor/ewma_test.cpp.o.d"
  "/root/repo/tests/predictor/window_test.cpp" "tests/CMakeFiles/core_tests.dir/predictor/window_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/predictor/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/paldia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
