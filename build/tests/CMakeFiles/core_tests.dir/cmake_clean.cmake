file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/autoscaler_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/autoscaler_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/batcher_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/batcher_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/gateway_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/gateway_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/hardware_selection_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/hardware_selection_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/job_distributor_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/job_distributor_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/paldia_policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/paldia_policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/predictor/ewma_test.cpp.o"
  "CMakeFiles/core_tests.dir/predictor/ewma_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/predictor/window_test.cpp.o"
  "CMakeFiles/core_tests.dir/predictor/window_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
