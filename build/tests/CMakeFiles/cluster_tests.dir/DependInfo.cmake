
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/cluster_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/cluster_test.cpp.o.d"
  "/root/repo/tests/cluster/cpu_executor_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/cpu_executor_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/cpu_executor_test.cpp.o.d"
  "/root/repo/tests/cluster/gpu_device_properties_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/gpu_device_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/gpu_device_properties_test.cpp.o.d"
  "/root/repo/tests/cluster/gpu_device_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/gpu_device_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/gpu_device_test.cpp.o.d"
  "/root/repo/tests/cluster/host_interference_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/host_interference_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/host_interference_test.cpp.o.d"
  "/root/repo/tests/cluster/node_test.cpp" "tests/CMakeFiles/cluster_tests.dir/cluster/node_test.cpp.o" "gcc" "tests/CMakeFiles/cluster_tests.dir/cluster/node_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/paldia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
