file(REMOVE_RECURSE
  "CMakeFiles/surge_tolerance.dir/surge_tolerance.cpp.o"
  "CMakeFiles/surge_tolerance.dir/surge_tolerance.cpp.o.d"
  "surge_tolerance"
  "surge_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surge_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
