# Empty dependencies file for surge_tolerance.
# This may be replaced when dependencies are built.
